"""ServeApp routing/status codes and the asyncio HTTP server end to end."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.server import NNCServer, ServeApp
from repro.serve.smoke import _ServerThread
from repro.serve.updates import DatasetManager

# Mid-dataset query over overlapping objects: dominance checks actually
# run, so budget-degradation paths are reachable.
QUERY_POINTS = [[4700.0, 5300.0], [5200.0, 5800.0]]


def _manager(registry=None, n: int = 40):
    rng = np.random.default_rng(13)
    centers = synthetic.anticorrelated_centers(n, 2, rng)
    objects = synthetic.make_objects(centers, 4, 2000.0, rng)
    return DatasetManager(objects, shards=2, metrics=registry)


@pytest.fixture()
def app():
    registry = MetricsRegistry()
    a = ServeApp(
        _manager(registry),
        cache=ResultCache(32, metrics=registry),
        registry=registry,
        max_inflight=2,
    )
    yield a
    a.manager.close()


class TestServeApp:
    def test_query_roundtrip(self, app):
        status, body = app.handle(
            "POST", "/query", {"points": QUERY_POINTS, "operator": "FSD"}
        )
        assert status == 200
        assert body["count"] >= 1 and not body["degraded"]
        assert body["epoch"] == 0 and body["cached"] is False

    def test_second_query_served_from_cache(self, app):
        payload = {"points": QUERY_POINTS, "operator": "PSD", "k": 2}
        first = app.handle("POST", "/query", payload)
        status, body = app.handle("POST", "/query", payload)
        assert status == 200 and body["cached"] is True
        assert body["candidates"] == first[1]["candidates"]

    def test_cache_opt_out_and_budget_bypass(self, app):
        payload = {"points": QUERY_POINTS, "operator": "FSD"}
        app.handle("POST", "/query", payload)
        _, body = app.handle("POST", "/query", {**payload, "cache": False})
        assert body["cached"] is False
        # A budgeted query never touches the cache, even on repeat.
        budgeted = {**payload, "budget": {"deadline_ms": 10_000}}
        app.handle("POST", "/query", budgeted)
        _, body = app.handle("POST", "/query", budgeted)
        assert body["cached"] is False

    def test_degraded_answer_not_cached(self, app):
        payload = {
            "points": QUERY_POINTS,
            "operator": "FSD",
            "budget": {"max_dominance_checks": 2},
        }
        status, body = app.handle("POST", "/query", payload)
        assert status == 200 and body["degraded"]
        assert body["degradation"] is not None
        assert app.cache.stats()["hits"] == 0

    def test_insert_then_delete_roundtrip(self, app):
        status, body = app.handle(
            "POST", "/insert", {"points": QUERY_POINTS, "oid": "it"}
        )
        assert status == 200 and body == {
            "oid": "it", "epoch": 1, "inserted": True,
        }
        status, body = app.handle("POST", "/delete", {"oid": "it"})
        assert status == 200 and body["deleted"] and body["epoch"] == 2

    @pytest.mark.parametrize("method,path,payload,status", [
        ("POST", "/query", {"operator": "FSD"}, 400),        # no points
        ("POST", "/query", {"points": [[1.0, 2.0]], "k": 0}, 400),
        ("GET", "/query", None, 404),                        # wrong method
        ("POST", "/nope", {}, 404),
        ("POST", "/delete", {"oid": "ghost"}, 404),
        ("POST", "/insert", {"points": [[float("nan"), 1.0]]}, 422),
    ])
    def test_error_statuses(self, app, method, path, payload, status):
        got, body = app.handle(method, path, payload)
        assert got == status and "error" in body

    def test_duplicate_insert_is_conflict(self, app):
        app.handle("POST", "/insert", {"points": QUERY_POINTS, "oid": "dup"})
        status, body = app.handle(
            "POST", "/insert", {"points": QUERY_POINTS, "oid": "dup"}
        )
        assert status == 409 and "dup" in body["error"]

    def test_invalid_insert_carries_validation_report(self, app):
        status, body = app.handle(
            "POST", "/insert", {"points": [[1.0, float("inf")]]}
        )
        assert status == 422
        assert body["report"]["n_dropped"] == 1

    def test_admission_counter(self, app):
        assert app.try_acquire() and app.try_acquire()
        assert not app.try_acquire()  # max_inflight=2
        app.release()
        assert app.try_acquire()
        app.release(), app.release()
        assert app.inflight == 0

    def test_healthz_and_metrics(self, app):
        app.handle("POST", "/query", {"points": QUERY_POINTS})
        status, health = app.handle("GET", "/healthz", None)
        assert status == 200 and health["status"] == "ok"
        assert health["objects"] == 40 and health["shards"] == 2
        status, body = app.dispatch("GET", "/metrics", None)
        assert status == 200 and "repro_serve_cache_misses_total" in body["text"]

    def test_dispatch_records_request_metrics(self, app):
        app.dispatch("POST", "/query", {"points": QUERY_POINTS})
        app.dispatch("POST", "/query", {"bad": True})
        assert app.registry.value(
            "repro_serve_requests_total", {"route": "/query", "status": "200"}
        ) == 1.0
        assert app.registry.value(
            "repro_serve_requests_total", {"route": "/query", "status": "400"}
        ) == 1.0

    def test_default_budget_applies_when_request_has_none(self):
        registry = MetricsRegistry()
        app = ServeApp(
            _manager(registry),
            registry=registry,
            default_budget={"max_dominance_checks": 2},
        )
        try:
            status, body = app.handle(
                "POST", "/query", {"points": QUERY_POINTS}
            )
            assert status == 200 and body["degraded"]
        finally:
            app.manager.close()


# ----------------------------------------------------------------------- #
# Full HTTP server on a background event loop
# ----------------------------------------------------------------------- #

def _http(port: int, method: str, path: str, payload=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(data), resp
        return resp.status, data.decode(), resp
    finally:
        conn.close()


@pytest.fixture(scope="module")
def live_server():
    registry = MetricsRegistry()
    app = ServeApp(
        _manager(registry),
        cache=ResultCache(32, metrics=registry),
        registry=registry,
        max_inflight=4,
    )
    runner = _ServerThread(NNCServer(app, port=0))
    port = runner.start()
    yield app, port, runner
    if not app.draining:
        runner.drain()


class TestHTTPServer:
    def test_query_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(
            port, "POST", "/query",
            {"points": QUERY_POINTS, "operator": "SSD"},
        )
        assert status == 200 and body["count"] >= 1

    def test_insert_delete_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(
            port, "POST", "/insert", {"points": QUERY_POINTS, "oid": "http"}
        )
        assert status == 200 and body["inserted"]
        status, body, _ = _http(port, "POST", "/delete", {"oid": "http"})
        assert status == 200 and body["deleted"]

    def test_bad_json_is_400(self, live_server):
        _, port, _ = live_server
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
        try:
            conn.request("POST", "/query", body="{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_healthz_and_metrics_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, text, resp = _http(port, "GET", "/metrics")
        assert status == 200
        assert "repro_serve_requests_total" in text

    def test_saturated_engine_returns_429(self, live_server):
        app, port, _ = live_server
        # Fill every admission slot from the test, then knock.
        grabbed = 0
        while app.try_acquire():
            grabbed += 1
        try:
            status, body, resp = _http(
                port, "POST", "/query", {"points": QUERY_POINTS}, timeout=10.0
            )
            assert status == 429
            assert resp.getheader("Retry-After") == "1"
        finally:
            for _ in range(grabbed):
                app.release()

    def test_drain_refuses_new_engine_traffic(self, live_server):
        # Runs last in the class: drains the module-scoped server.
        app, port, runner = live_server
        runner.drain()
        assert app.draining and app.inflight == 0
        try:
            status, _, _ = _http(
                port, "POST", "/query", {"points": QUERY_POINTS}, timeout=2.0
            )
            refused = status == 503
        except (ConnectionError, OSError):
            refused = True  # listener already closed — equally refused
        assert refused
