"""ServeApp routing/status codes and the asyncio HTTP server end to end."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.server import NNCServer, ServeApp
from repro.serve.smoke import _ServerThread
from repro.serve.updates import DatasetManager

# Mid-dataset query over overlapping objects: dominance checks actually
# run, so budget-degradation paths are reachable.
QUERY_POINTS = [[4700.0, 5300.0], [5200.0, 5800.0]]


def _manager(registry=None, n: int = 40):
    rng = np.random.default_rng(13)
    centers = synthetic.anticorrelated_centers(n, 2, rng)
    objects = synthetic.make_objects(centers, 4, 2000.0, rng)
    return DatasetManager(objects, shards=2, metrics=registry)


@pytest.fixture()
def app():
    registry = MetricsRegistry()
    a = ServeApp(
        _manager(registry),
        cache=ResultCache(32, metrics=registry),
        registry=registry,
        max_inflight=2,
    )
    yield a
    a.manager.close()


class TestServeApp:
    def test_query_roundtrip(self, app):
        status, body = app.handle(
            "POST", "/query", {"points": QUERY_POINTS, "operator": "FSD"}
        )
        assert status == 200
        assert body["count"] >= 1 and not body["degraded"]
        assert body["epoch"] == 0 and body["cached"] is False

    def test_second_query_served_from_cache(self, app):
        payload = {"points": QUERY_POINTS, "operator": "PSD", "k": 2}
        first = app.handle("POST", "/query", payload)
        status, body = app.handle("POST", "/query", payload)
        assert status == 200 and body["cached"] is True
        assert body["candidates"] == first[1]["candidates"]

    def test_cache_opt_out_and_budget_bypass(self, app):
        payload = {"points": QUERY_POINTS, "operator": "FSD"}
        app.handle("POST", "/query", payload)
        _, body = app.handle("POST", "/query", {**payload, "cache": False})
        assert body["cached"] is False
        # A budgeted query never touches the cache, even on repeat.
        budgeted = {**payload, "budget": {"deadline_ms": 10_000}}
        app.handle("POST", "/query", budgeted)
        _, body = app.handle("POST", "/query", budgeted)
        assert body["cached"] is False

    def test_degraded_answer_not_cached(self, app):
        payload = {
            "points": QUERY_POINTS,
            "operator": "FSD",
            "budget": {"max_dominance_checks": 2},
        }
        status, body = app.handle("POST", "/query", payload)
        assert status == 200 and body["degraded"]
        assert body["degradation"] is not None
        assert app.cache.stats()["hits"] == 0

    def test_insert_then_delete_roundtrip(self, app):
        status, body = app.handle(
            "POST", "/insert", {"points": QUERY_POINTS, "oid": "it"}
        )
        assert status == 200 and body == {
            "oid": "it", "epoch": 1, "inserted": True,
        }
        status, body = app.handle("POST", "/delete", {"oid": "it"})
        assert status == 200 and body["deleted"] and body["epoch"] == 2

    @pytest.mark.parametrize("method,path,payload,status", [
        ("POST", "/query", {"operator": "FSD"}, 400),        # no points
        ("POST", "/query", {"points": [[1.0, 2.0]], "k": 0}, 400),
        ("GET", "/query", None, 404),                        # wrong method
        ("POST", "/nope", {}, 404),
        ("POST", "/delete", {"oid": "ghost"}, 404),
        ("POST", "/insert", {"points": [[float("nan"), 1.0]]}, 422),
    ])
    def test_error_statuses(self, app, method, path, payload, status):
        got, body = app.handle(method, path, payload)
        assert got == status and "error" in body

    def test_duplicate_insert_is_conflict(self, app):
        app.handle("POST", "/insert", {"points": QUERY_POINTS, "oid": "dup"})
        status, body = app.handle(
            "POST", "/insert", {"points": QUERY_POINTS, "oid": "dup"}
        )
        assert status == 409 and "dup" in body["error"]

    def test_invalid_insert_carries_validation_report(self, app):
        status, body = app.handle(
            "POST", "/insert", {"points": [[1.0, float("inf")]]}
        )
        assert status == 422
        assert body["report"]["n_dropped"] == 1

    def test_admission_counter(self, app):
        assert app.try_acquire() and app.try_acquire()
        assert not app.try_acquire()  # max_inflight=2
        app.release()
        assert app.try_acquire()
        app.release(), app.release()
        assert app.inflight == 0

    def test_healthz_and_metrics(self, app):
        app.handle("POST", "/query", {"points": QUERY_POINTS})
        status, health = app.handle("GET", "/healthz", None)
        assert status == 200 and health["status"] == "ok"
        assert health["objects"] == 40 and health["shards"] == 2
        status, body = app.dispatch("GET", "/metrics", None)
        assert status == 200 and "repro_serve_cache_misses_total" in body["text"]

    def test_dispatch_records_request_metrics(self, app):
        app.dispatch("POST", "/query", {"points": QUERY_POINTS})
        app.dispatch("POST", "/query", {"bad": True})
        assert app.registry.value(
            "repro_serve_requests_total", {"route": "/query", "status": "200"}
        ) == 1.0
        assert app.registry.value(
            "repro_serve_requests_total", {"route": "/query", "status": "400"}
        ) == 1.0

    def test_healthz_reports_compaction_truthfully(self, app):
        _, health = app.handle("GET", "/healthz", None)
        assert health["compacting"] is False and health["status"] == "ok"
        # Surface the mid-compaction window without racing a real compaction.
        app.manager._compacting = True
        try:
            _, health = app.handle("GET", "/healthz", None)
            assert health["status"] == "compacting"
            assert health["compacting"] is True
            assert health["epoch"] == app.manager.epoch
            assert health["inflight"] == 0
        finally:
            app.manager._compacting = False

    def test_status_endpoint_reports_slo_and_sampler(self, app):
        app.dispatch("POST", "/query", {"points": QUERY_POINTS})
        app.dispatch(
            "POST",
            "/query",
            {"points": QUERY_POINTS, "budget": {"max_dominance_checks": 2}},
        )
        status, body = app.dispatch("GET", "/status", None)
        assert status == 200
        assert body["status"] == "ok" and body["compacting"] is False
        assert body["sampler"]["rate"] == 0.0
        assert body["sampler"]["decisions"] == 2
        assert body["sampler"]["sampled"] == 0
        assert body["audit"] is None
        slo = body["slo"]
        assert {"p50", "p95", "p99"} <= set(slo["latency_seconds"]["FSD"])
        assert slo["degraded_ratio"] == 0.5  # one of two engine answers
        assert slo["error_ratio"] == 0.0
        assert slo["burn"].get("degraded") == 1

    def test_internal_error_returns_500_and_burns_error_slo(self, app):
        def boom(*args, **kwargs):
            raise RuntimeError("wired to fail")

        app.manager.query = boom
        status, body = app.dispatch("POST", "/query", {"points": QUERY_POINTS})
        assert status == 500 and body["error"] == "internal error"
        assert app.registry.value(
            "repro_serve_requests_total", {"route": "/query", "status": "500"}
        ) == 1.0
        assert app.registry.value(
            "repro_slo_burn_total", {"slo": "error"}
        ) == 1.0
        _, body = app.dispatch("GET", "/status", None)
        assert body["slo"]["error_ratio"] == 1.0

    def test_default_budget_applies_when_request_has_none(self):
        registry = MetricsRegistry()
        app = ServeApp(
            _manager(registry),
            registry=registry,
            default_budget={"max_dominance_checks": 2},
        )
        try:
            status, body = app.handle(
                "POST", "/query", {"points": QUERY_POINTS}
            )
            assert status == 200 and body["degraded"]
        finally:
            app.manager.close()


class TestRequestObservability:
    """Acceptance: sampled requests yield one merged trace + audit record."""

    def _traced_app(self, tmp_path, *, backend="thread", shards=4):
        registry = MetricsRegistry()
        rng = np.random.default_rng(13)
        centers = synthetic.anticorrelated_centers(40, 2, rng)
        objects = synthetic.make_objects(centers, 4, 2000.0, rng)
        manager = DatasetManager(
            objects, shards=shards, backend=backend, metrics=registry
        )
        from repro.serve.audit import AuditLog

        audit = AuditLog(tmp_path / "audit.jsonl", metrics=registry)
        return ServeApp(
            manager,
            cache=ResultCache(32, metrics=registry),
            registry=registry,
            sample_rate=1.0,
            audit=audit,
            trace_dir=tmp_path / "traces",
            slo_latency_ms=30_000.0,
        )

    def test_sampled_query_produces_merged_trace_and_audit(self, tmp_path):
        app = self._traced_app(tmp_path)
        try:
            status, body = app.dispatch(
                "POST",
                "/query",
                {"points": QUERY_POINTS, "operator": "FSD"},
                {"x-request-id": "acceptance-1"},
            )
        finally:
            app.manager.close()
            app.audit.close()
        assert status == 200
        assert body["request_id"] == "acceptance-1"
        assert body["sampled"] is True and len(body["trace_id"]) == 32

        # One merged Chrome trace: root span on the request row, one
        # shard-search span per shard, all carrying the request's trace id.
        trace_path = tmp_path / "traces" / "trace-acceptance-1.json"
        doc = json.loads(trace_path.read_text())
        assert doc == app.last_trace
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {0, 1, 2, 3, 4}
        roots = [e for e in spans if e["tid"] == 0 and e["name"] == "query"]
        assert len(roots) == 1
        shard_spans = [e for e in spans if e["name"] == "shard-search"]
        assert len(shard_spans) == 4
        assert {e["args"]["trace_id"] for e in spans} == {body["trace_id"]}
        assert {e["args"]["request_id"] for e in spans} == {"acceptance-1"}
        # Child spans carry their own span ids, parented on the root.
        root_span_id = roots[0]["args"]["span_id"]
        parents = {e["args"]["parent_span_id"] for e in shard_spans}
        assert parents == {root_span_id}

        # One audit record, digest over the served candidates.
        from repro.serve.audit import answer_digest, load_audit

        records = load_audit(tmp_path / "audit.jsonl")
        assert len(records) == 1
        assert records[0]["request_id"] == "acceptance-1"
        assert records[0]["digest"] == answer_digest(body["candidates"])

        # SLO families on /metrics (derived gauges computed at scrape time).
        _, metrics_body = app.handle("GET", "/metrics", None)
        text = metrics_body["text"]
        assert 'repro_slo_latency_seconds{operator="FSD",quantile="p95"}' in text
        assert "repro_slo_degraded_ratio 0" in text
        assert "repro_serve_sampled_total 1" in text

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_trace_rows_across_backends(self, tmp_path, backend):
        app = self._traced_app(tmp_path, backend=backend)
        try:
            status, body = app.dispatch(
                "POST", "/query", {"points": QUERY_POINTS, "operator": "PSD"}
            )
        finally:
            app.manager.close()
            app.audit.close()
        assert status == 200
        spans = [e for e in app.last_trace["traceEvents"] if e["ph"] == "X"]
        shard_rows = {e["tid"] for e in spans if e["name"] == "shard-search"}
        if backend == "serial":
            # The serial cascade traces on the request tracer itself.
            assert shard_rows == {0}
        else:
            assert shard_rows == {1, 2, 3, 4}
        assert len([e for e in spans if e["name"] == "shard-search"]) == 4
        assert {e["args"]["trace_id"] for e in spans} == {body["trace_id"]}

    def test_cache_hit_restamps_request_identity(self, tmp_path):
        app = self._traced_app(tmp_path)
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2}
            _, first = app.dispatch("POST", "/query", payload)
            _, second = app.dispatch("POST", "/query", payload)
        finally:
            app.manager.close()
            app.audit.close()
        assert second["cached"] is True
        assert second["candidates"] == first["candidates"]
        assert second["request_id"] != first["request_id"]
        assert second["trace_id"] != first["trace_id"]
        # The stamped identity never leaks into the shared cache entry.
        cached = app.cache.stats()
        assert cached["hits"] == 1

    def test_unsampled_requests_skip_tracing(self, tmp_path):
        registry = MetricsRegistry()
        app = ServeApp(_manager(registry), registry=registry, sample_rate=0.0)
        try:
            status, body = app.dispatch(
                "POST", "/query", {"points": QUERY_POINTS}
            )
        finally:
            app.manager.close()
        assert status == 200
        assert body["sampled"] is False and app.last_trace is None
        assert registry.get("repro_serve_sampled_total") is None


# ----------------------------------------------------------------------- #
# Full HTTP server on a background event loop
# ----------------------------------------------------------------------- #

def _http(port: int, method: str, path: str, payload=None, timeout=30.0,
          headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        resp = conn.getresponse()
        data = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(data), resp
        return resp.status, data.decode(), resp
    finally:
        conn.close()


@pytest.fixture(scope="module")
def live_server():
    registry = MetricsRegistry()
    app = ServeApp(
        _manager(registry),
        cache=ResultCache(32, metrics=registry),
        registry=registry,
        max_inflight=4,
    )
    runner = _ServerThread(NNCServer(app, port=0))
    port = runner.start()
    yield app, port, runner
    if not app.draining:
        runner.drain()


class TestHTTPServer:
    def test_query_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(
            port, "POST", "/query",
            {"points": QUERY_POINTS, "operator": "SSD"},
        )
        assert status == 200 and body["count"] >= 1

    def test_insert_delete_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(
            port, "POST", "/insert", {"points": QUERY_POINTS, "oid": "http"}
        )
        assert status == 200 and body["inserted"]
        status, body, _ = _http(port, "POST", "/delete", {"oid": "http"})
        assert status == 200 and body["deleted"]

    def test_bad_json_is_400(self, live_server):
        _, port, _ = live_server
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10.0)
        try:
            conn.request("POST", "/query", body="{not json",
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            assert resp.status == 400
        finally:
            conn.close()

    def test_healthz_and_metrics_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(port, "GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, text, resp = _http(port, "GET", "/metrics")
        assert status == 200
        assert "repro_serve_requests_total" in text

    def test_request_id_header_honoured_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(
            port, "POST", "/query", {"points": QUERY_POINTS},
            headers={"X-Request-Id": "wire-42"},
        )
        assert status == 200 and body["request_id"] == "wire-42"

    def test_status_over_http(self, live_server):
        _, port, _ = live_server
        status, body, _ = _http(port, "GET", "/status")
        assert status == 200
        assert body["sampler"]["rate"] == 0.0
        assert "slo" in body and "burn" in body["slo"]

    def test_saturated_engine_returns_429(self, live_server):
        app, port, _ = live_server
        # Fill every admission slot from the test, then knock.
        grabbed = 0
        while app.try_acquire():
            grabbed += 1
        try:
            status, body, resp = _http(
                port, "POST", "/query", {"points": QUERY_POINTS}, timeout=10.0
            )
            assert status == 429
            assert resp.getheader("Retry-After") == "1"
        finally:
            for _ in range(grabbed):
                app.release()

    def test_drain_refuses_new_engine_traffic(self, live_server):
        # Runs last in the class: drains the module-scoped server.
        app, port, runner = live_server
        runner.drain()
        assert app.draining and app.inflight == 0
        try:
            status, _, _ = _http(
                port, "POST", "/query", {"points": QUERY_POINTS}, timeout=2.0
            )
            refused = status == 503
        except (ConnectionError, OSError):
            refused = True  # listener already closed — equally refused
        assert refused
