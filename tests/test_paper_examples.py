"""Golden tests: every relation stated in the paper's worked examples."""

import numpy as np
import pytest

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.core.nnc import nn_candidates
from repro.core.psd import build_psd_network
from repro.core.context import QueryContext
from repro.datasets import paper_examples as pe
from repro.flow.maxflow import max_flow
from repro.functions.n1 import expected_distance, max_distance, min_distance
from repro.functions.n2 import PossibleWorldScores
from repro.functions.n3 import earth_movers_distance


class TestFigure1:
    def test_nn_core_misses_function_winners(self):
        scene = pe.figure1()
        objects = scene.object_list()
        q = scene.query
        # A supersedes B and C; B supersedes C (probability 0.6 each):
        # with a single query instance, "supersedes" is Pr(closer) > 0.5.
        pw = PossibleWorldScores(objects, q)
        # C is NN under max distance.
        assert min(objects, key=lambda o: max_distance(o, q)).oid == "C"
        # B is NN under expected distance.
        assert min(objects, key=lambda o: expected_distance(o, q)).oid == "B"
        # A is NN under min distance and NN probability.
        assert min(objects, key=lambda o: min_distance(o, q)).oid == "A"
        assert max(range(3), key=lambda i: pw.nn_probability(i)) == 0


class TestFigure3:
    def test_all_stated_relations(self):
        scene = pe.figure3()
        q = scene.query
        assert brute_s_dominates(scene["A"], scene["B"], q)
        assert brute_s_dominates(scene["A"], scene["C"], q)
        assert not brute_s_dominates(scene["B"], scene["C"], q)
        assert brute_ss_dominates(scene["A"], scene["B"], q)
        assert not brute_ss_dominates(scene["A"], scene["C"], q)

    def test_nn_probabilities(self):
        scene = pe.figure3()
        pw = PossibleWorldScores(scene.object_list(), scene.query)
        assert pw.nn_probability(0) == pytest.approx(0.375)
        assert pw.nn_probability(1) == pytest.approx(0.125)
        assert pw.nn_probability(2) == pytest.approx(0.5)

    def test_nnc_sets(self):
        scene = pe.figure3()
        objects = scene.object_list()
        assert sorted(nn_candidates(objects, scene.query, "SSD").oids()) == ["A"]
        assert sorted(nn_candidates(objects, scene.query, "SSSD").oids()) == [
            "A",
            "C",
        ]

    def test_distance_distribution_values(self):
        scene = pe.figure3()
        a_q = scene["A"].distance_distribution(scene.query)
        assert list(a_q.values) == [1.0, 2.0, 18.0, 19.0]
        assert np.allclose(a_q.probs, 0.25)


class TestFigure4:
    def test_all_stated_relations(self):
        scene = pe.figure4()
        q = scene.query
        assert brute_ss_dominates(scene["A"], scene["B"], q)
        assert brute_s_dominates(scene["A"], scene["B"], q)
        assert not brute_p_dominates(scene["A"], scene["B"], q)
        assert brute_p_dominates(scene["A"], scene["C"], q)
        assert not brute_f_dominates(scene["A"], scene["C"], q)

    def test_emd_values(self):
        scene = pe.figure4()
        assert earth_movers_distance(scene["A"], scene.query) == pytest.approx(4.0)
        assert earth_movers_distance(scene["B"], scene.query) == pytest.approx(3.75)

    def test_nnc_sets(self):
        scene = pe.figure4()
        objects = scene.object_list()
        assert sorted(nn_candidates(objects, scene.query, "SSSD").oids()) == ["A"]
        assert sorted(nn_candidates(objects, scene.query, "PSD").oids()) == [
            "A",
            "B",
        ]


class TestFigure6Example2:
    def test_scene_a(self):
        scene_a, _ = pe.figure6()
        q = scene_a.query
        a_q = scene_a["A"].distance_distribution(q)
        b_q = scene_a["B"].distance_distribution(q)
        assert list(a_q.values) == [3.0, 17.0]
        assert list(b_q.values) == [5.0, 25.0]
        assert brute_s_dominates(scene_a["A"], scene_a["B"], q)
        assert not brute_ss_dominates(scene_a["A"], scene_a["B"], q)

    def test_scene_b(self):
        _, scene_b = pe.figure6()
        q = scene_b.query
        a_q = scene_b["A"].distance_distribution(q)
        assert list(a_q.values) == [5.0, 8.0, 10.0, 23.0]
        assert brute_ss_dominates(scene_b["A"], scene_b["B"], q)


class TestFigure8Example3:
    def test_psd_through_identity_match(self):
        scene = pe.figure8()
        assert brute_p_dominates(scene["A"], scene["B"], scene.query)

    def test_distances_as_stated(self):
        scene = pe.figure8()
        d = np.linalg.norm(
            scene.query.points[:, None, :] - scene["A"].points[None, :, :], axis=2
        )
        assert d[0, 0] == pytest.approx(5.0)
        assert d[1, 0] == pytest.approx(15.0)
        assert d[0, 1] == pytest.approx(20.0)
        assert d[1, 1] == pytest.approx(10.0)


class TestFigure9Example5:
    def test_network_and_flow(self):
        scene = pe.figure9()
        ctx = QueryContext(scene.query)
        net, source, sink, adj = build_psd_network(scene["U"], scene["V"], ctx)
        # Stated adjacency: u1,u2 -> both; u3 -> v2 only.
        assert adj.tolist() == [[True, True], [True, True], [False, True]]
        assert max_flow(net, source, sink) == pytest.approx(1.0)
        assert brute_p_dominates(scene["U"], scene["V"], scene.query)


class TestFigure15Theorem3:
    def test_collapse_and_fsd_gap(self):
        scene = pe.figure15()
        q = scene.query
        a, b = scene["A"], scene["B"]
        assert brute_s_dominates(a, b, q)
        assert brute_ss_dominates(a, b, q)
        assert brute_p_dominates(a, b, q)
        assert not brute_f_dominates(a, b, q)
