"""Result cache: LRU behaviour, digests, metrics, epoch invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache, query_digest
from repro.serve.updates import DatasetManager


def _query(seed: int = 0, oid: str = "Q"):
    rng = np.random.default_rng(seed)
    return synthetic.make_query(np.array([50.0, 50.0]), 3, 10.0, rng, oid=oid)


class TestDigest:
    def test_same_content_same_digest_regardless_of_oid(self):
        q1 = _query(0, oid="A")
        q2 = _query(0, oid="B")
        assert query_digest(q1) == query_digest(q2)

    def test_different_content_different_digest(self):
        assert query_digest(_query(0)) != query_digest(_query(1))


class TestLRU:
    def test_get_put_and_lru_eviction(self):
        cache = ResultCache(capacity=2)
        keys = [ResultCache.key(0, "FSD", "euclidean", 1, _query(i))
                for i in range(3)]
        cache.put(keys[0], {"a": 1})
        cache.put(keys[1], {"b": 2})
        assert cache.get(keys[0]) == {"a": 1}  # refreshes key 0
        cache.put(keys[2], {"c": 3})           # evicts key 1 (LRU)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == {"a": 1}
        assert cache.get(keys[2]) == {"c": 3}
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        key = ResultCache.key(0, "FSD", "euclidean", 1, _query())
        cache.put(key, {"x": 1})
        assert cache.get(key) is None and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_stats_and_metrics_export(self):
        registry = MetricsRegistry()
        cache = ResultCache(capacity=1, metrics=registry)
        key = ResultCache.key(0, "FSD", "euclidean", 1, _query())
        cache.get(key)
        cache.put(key, {"x": 1})
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_ratio"] == 0.5
        assert registry.value("repro_serve_cache_hits_total") == 1.0
        assert registry.value("repro_serve_cache_misses_total") == 1.0
        assert registry.value("repro_serve_cache_size") == 1.0

    def test_key_separates_every_dimension(self):
        q = _query()
        base = ResultCache.key(0, "FSD", "euclidean", 1, q)
        assert ResultCache.key(1, "FSD", "euclidean", 1, q) != base
        assert ResultCache.key(0, "PSD", "euclidean", 1, q) != base
        assert ResultCache.key(0, "FSD", "manhattan", 1, q) != base
        assert ResultCache.key(0, "FSD", "euclidean", 2, q) != base


class TestEpochInvalidation:
    """Satellite pin: a cache hit after insert/delete is impossible."""

    @pytest.fixture()
    def manager(self):
        rng = np.random.default_rng(3)
        centers = synthetic.independent_centers(60, 2, rng)
        objects = synthetic.make_objects(centers, 4, 30.0, rng)
        m = DatasetManager(objects, shards=2)
        yield m
        m.close()

    def _serve_once(self, manager, cache, query):
        """The server's cache discipline: check, compute, store at epoch."""
        key = manager.cache_key("FSD", "euclidean", 1, query)
        hit = cache.get(key)
        if hit is not None:
            return hit, True
        result, epoch = manager.query(query, "FSD")
        payload = {"oids": result.oids()}
        cache.put(
            ResultCache.key(epoch, "FSD", "euclidean", 1, query), payload
        )
        return payload, False

    def test_no_stale_hit_after_insert(self, manager):
        cache = ResultCache(32)
        query = _query()
        first, cached = self._serve_once(manager, cache, query)
        assert not cached
        _, cached = self._serve_once(manager, cache, query)
        assert cached  # warm before the update
        manager.insert([[50.0, 50.0], [50.5, 50.5]], oid="close")
        after, cached = self._serve_once(manager, cache, query)
        assert not cached, "cache hit survived an insert"
        assert "close" in after["oids"]

    def test_no_stale_hit_after_delete(self, manager):
        cache = ResultCache(32)
        query = _query()
        oid, _ = manager.insert([[50.0, 50.0], [50.5, 50.5]])
        first, cached = self._serve_once(manager, cache, query)
        assert not cached and oid in first["oids"]
        manager.delete(oid)
        after, cached = self._serve_once(manager, cache, query)
        assert not cached, "cache hit survived a delete"
        assert oid not in after["oids"]

    def test_epoch_monotone_across_mutations(self, manager):
        e0 = manager.epoch
        oid, e1 = manager.insert([[1.0, 2.0]])
        _, e2 = manager.delete(oid)
        assert e0 < e1 < e2
