"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.operator == "PSD"
        assert args.k == 1

    def test_operator_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--operator", "XSD"])

    def test_figure_names_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "SSD" in out

    def test_generate_and_search(self, tmp_path, capsys):
        dataset = tmp_path / "d.npz"
        assert (
            main(
                [
                    "generate", str(dataset),
                    "--kind", "indep", "--n", "60", "--m", "4", "--seed", "1",
                ]
            )
            == 0
        )
        assert dataset.exists()
        capsys.readouterr()
        assert (
            main(
                [
                    "search", "--dataset", str(dataset),
                    "--operator", "SSD", "--quiet", "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "candidate(s) of 60 objects" in out

    def test_search_synthetic_topk(self, capsys):
        assert (
            main(
                [
                    "search", "--n", "50", "--m", "4", "--operator", "SSD",
                    "--k", "2", "--quiet", "--seed", "2",
                ]
            )
            == 0
        )
        assert "(k=2)" in capsys.readouterr().out

    def test_generate_semireal_kinds(self, tmp_path, capsys):
        for kind in ("nba", "gowalla", "house", "ca", "usa"):
            path = tmp_path / f"{kind}.npz"
            assert (
                main(
                    [
                        "generate", str(path),
                        "--kind", kind, "--n", "25", "--m", "4",
                    ]
                )
                == 0
            )
            assert path.exists()

    def test_figure_command(self, capsys):
        # The cheapest figure at tiny scale.
        assert main(["figure", "fig11f", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11(f)" in out
        assert "SSD" in out


class TestJSONFormat:
    def test_search_json_shape(self, capsys):
        import json

        rc = main(
            [
                "search", "--n", "50", "--m", "4", "--operator", "FSD",
                "--k", "2", "--seed", "2", "--format", "json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["operator"] == "FSD" and doc["k"] == 2
        assert doc["n_objects"] == 50
        assert doc["count"] == len(doc["candidates"]) >= 1
        assert all(
            {"oid", "dominators"} <= set(c) for c in doc["candidates"]
        )
        assert doc["degraded"] is False and doc["degradation"] is None
        assert doc["elapsed_ms"] >= 0
        assert doc["counters"]["dominance_checks"] >= 0

    def test_search_json_degraded_keeps_exit_code(self, capsys):
        import json

        rc = main(
            [
                "search", "--n", "40", "--m", "4", "--operator", "PSD",
                "--seed", "3", "--deadline-ms", "0", "--format", "json",
            ]
        )
        assert rc == 3
        doc = json.loads(capsys.readouterr().out)
        assert doc["degraded"] is True
        assert doc["degradation"]["reason"] == "deadline"


class TestServeClientParsers:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 1
        assert args.partitioner == "round-robin"
        assert args.backend == "auto"
        assert args.port == 8080
        assert args.cache_size == 256
        assert args.max_inflight == 8
        assert args.on_invalid == "strict"

    def test_serve_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--partitioner", "mod-hash"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "gpu"])

    def test_client_defaults_and_actions(self):
        args = build_parser().parse_args(["client", "health"])
        assert args.url == "http://127.0.0.1:8080"
        assert args.format == "json"
        for action in ("query", "insert", "delete", "health", "metrics"):
            assert build_parser().parse_args(["client", action])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "ping"])

    def test_client_connection_refused_is_usage_error(self, capsys):
        # Nothing listens on this port: exit 2, not a traceback.
        rc = main(
            ["client", "health", "--url", "http://127.0.0.1:1"]
        )
        assert rc == 2
        assert "connection failed" in capsys.readouterr().err

    def test_client_query_requires_points(self, capsys):
        rc = main(["client", "query", "--url", "http://127.0.0.1:1"])
        assert rc == 2

    def test_client_bad_points_json(self, capsys):
        rc = main(
            ["client", "query", "--points", "not-json",
             "--url", "http://127.0.0.1:1"]
        )
        assert rc == 2


class TestResilienceFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.deadline_ms is None
        assert args.max_dominance_checks is None
        assert args.max_flow_augmentations is None
        assert args.on_invalid is None

    def test_on_invalid_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--on-invalid", "maybe"])

    def test_zero_deadline_exits_degraded(self, capsys):
        rc = main(
            [
                "search", "--n", "40", "--m", "4", "--operator", "PSD",
                "--quiet", "--seed", "3", "--deadline-ms", "0",
            ]
        )
        assert rc == 3
        out = capsys.readouterr().out
        assert "DEGRADED" in out
        assert "certified superset" in out

    def test_breakdown_includes_degradation_report(self, capsys):
        rc = main(
            [
                "search", "--n", "40", "--m", "4", "--operator", "SSD",
                "--quiet", "--seed", "3", "--max-dominance-checks", "1",
                "--breakdown",
            ]
        )
        assert rc == 3
        out = capsys.readouterr().out
        assert "degradation report:" in out
        assert '"reason": "dominance_checks"' in out

    def test_generous_budget_exits_exact(self, capsys):
        rc = main(
            [
                "search", "--n", "40", "--m", "4", "--operator", "SSD",
                "--quiet", "--seed", "3", "--deadline-ms", "60000",
                "--max-dominance-checks", "1000000000",
            ]
        )
        assert rc == 0
        assert "DEGRADED" not in capsys.readouterr().out

    def _poisoned_dataset(self, tmp_path):
        import numpy as np

        from repro.objects import UncertainObject, save_objects

        obj = UncertainObject([[0.0, 0.0], [1.0, 1.0]], oid=0)
        obj.points[1, 0] = np.nan
        path = tmp_path / "bad.npz"
        save_objects(path, [obj, UncertainObject([[2.0, 2.0]], oid=1)])
        return path

    def test_strict_rejects_dirty_dataset(self, tmp_path, capsys):
        path = self._poisoned_dataset(tmp_path)
        rc = main(
            ["search", "--dataset", str(path), "--on-invalid", "strict",
             "--quiet"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "input rejected" in err
        assert "non-finite-coord" in err

    def test_repair_recovers_dirty_dataset(self, tmp_path, capsys):
        path = self._poisoned_dataset(tmp_path)
        rc = main(
            ["search", "--dataset", str(path), "--on-invalid", "repair",
             "--quiet", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 repaired" in out

    def test_skip_quarantines_dirty_dataset(self, tmp_path, capsys):
        path = self._poisoned_dataset(tmp_path)
        rc = main(
            ["search", "--dataset", str(path), "--on-invalid", "skip",
             "--quiet", "--seed", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out
        assert "of 1 objects" in out
