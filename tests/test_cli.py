"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.operator == "PSD"
        assert args.k == 1

    def test_operator_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--operator", "XSD"])

    def test_figure_names_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "SSD" in out

    def test_generate_and_search(self, tmp_path, capsys):
        dataset = tmp_path / "d.npz"
        assert (
            main(
                [
                    "generate", str(dataset),
                    "--kind", "indep", "--n", "60", "--m", "4", "--seed", "1",
                ]
            )
            == 0
        )
        assert dataset.exists()
        capsys.readouterr()
        assert (
            main(
                [
                    "search", "--dataset", str(dataset),
                    "--operator", "SSD", "--quiet", "--seed", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "candidate(s) of 60 objects" in out

    def test_search_synthetic_topk(self, capsys):
        assert (
            main(
                [
                    "search", "--n", "50", "--m", "4", "--operator", "SSD",
                    "--k", "2", "--quiet", "--seed", "2",
                ]
            )
            == 0
        )
        assert "(k=2)" in capsys.readouterr().out

    def test_generate_semireal_kinds(self, tmp_path, capsys):
        for kind in ("nba", "gowalla", "house", "ca", "usa"):
            path = tmp_path / f"{kind}.npz"
            assert (
                main(
                    [
                        "generate", str(path),
                        "--kind", kind, "--n", "25", "--m", "4",
                    ]
                )
                == 0
            )
            assert path.exists()

    def test_figure_command(self, capsys):
        # The cheapest figure at tiny scale.
        assert main(["figure", "fig11f", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11(f)" in out
        assert "SSD" in out
