"""Per-query explain: exact counter reconciliation, both tiers, wire.

The invariant worth a test name: for every explained query,

    sum(stage exclusive counters) + refine + untracked == counter bag

field for field, with ``untracked`` an explicit residual — on a single
node, and through the router's scatter-gather merge.  The file also pins
the context/sampling wire contracts the explain plane rides on
(satellite: RequestContext round-trips, forced sampling across the
router hop, exactly one merged Chrome trace per sampled request).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.request import RequestContext, Sampler
from repro.obs.tracer import SpanRecord
from repro.serve.cache import ResultCache
from repro.serve.explain import merge_explains, stage_rows
from repro.serve.remote import LocalNode
from repro.serve.router import RouterApp
from repro.serve.server import ServeApp
from repro.serve.updates import DatasetManager

QUERY_POINTS = [[4700.0, 5300.0], [5200.0, 5800.0]]


def _reconcile(explain: dict) -> dict:
    """bag - stages - refine - untracked; all-zero means exact."""
    residual = dict(explain["counters"])
    for row in explain["stages"]:
        for key, value in row["counters"].items():
            residual[key] = residual.get(key, 0) - value
    for key, value in explain["refine"]["counters"].items():
        residual[key] = residual.get(key, 0) - value
    for key, value in explain["untracked"].items():
        residual[key] = residual.get(key, 0) - value
    return {k: v for k, v in residual.items() if v}


@pytest.fixture(scope="module")
def objects():
    rng = np.random.default_rng(37)
    centers = synthetic.anticorrelated_centers(60, 2, rng)
    return synthetic.make_objects(centers, 4, 120.0, rng)


class TestStageRows:
    def _span(self, name, depth, duration, counters=None):
        return SpanRecord(name, 0.0, duration, depth, None, {},
                          counters or {})

    def test_exclusive_subtracts_children(self):
        # Postorder: child completes before parent.
        buffer = [
            self._span("child", 1, 0.010, {"checks": 3}),
            self._span("parent", 0, 0.050, {"checks": 10}),
        ]
        rows = {r["stage"]: r for r in stage_rows([buffer])}
        assert rows["child"]["counters"] == {"checks": 3}
        assert rows["parent"]["counters"] == {"checks": 7}
        assert rows["parent"]["exclusive_ms"] == pytest.approx(40.0)
        assert rows["parent"]["total_ms"] == pytest.approx(50.0)

    def test_counterless_envelope_passes_children_upward(self):
        # shard-search records no counters of its own; its children's
        # inclusive deltas must flow up to the grandparent undiminished.
        buffer = [
            self._span("work", 2, 0.005, {"checks": 4}),
            self._span("shard-search", 1, 0.006),
            self._span("query", 0, 0.008, {"checks": 4}),
        ]
        rows = {r["stage"]: r for r in stage_rows([buffer])}
        assert rows["work"]["counters"] == {"checks": 4}
        # The envelope charged nothing; query's own share is zero.
        assert rows["shard-search"]["counters"] == {}
        assert rows["query"]["counters"] == {}

    def test_exclusive_time_floors_at_zero(self):
        buffer = [
            self._span("child", 1, 0.020),
            self._span("parent", 0, 0.010),  # clock skew: child > parent
        ]
        rows = {r["stage"]: r for r in stage_rows([buffer])}
        assert rows["parent"]["exclusive_ms"] == 0.0


class TestNodeExplain:
    def _app(self, objects, **kw):
        manager = DatasetManager(objects, shards=2, backend="serial")
        return ServeApp(manager, **kw)

    def test_explain_reconciles_exactly(self, objects):
        app = self._app(objects)
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                       "explain": True}
            status, body = app.dispatch("POST", "/query", payload)
            assert status == 200
            explain = body["explain"]
            assert explain["stages"], "explain produced no stages"
            assert _reconcile(explain) == {}
            assert explain["counters"], "empty counter bag"
        finally:
            app.manager.close()

    def test_explain_forces_sampling(self, objects):
        app = self._app(objects)  # sample_rate=0: never sampled by rate
        try:
            payload = {"points": QUERY_POINTS, "operator": "PSD", "k": 1,
                       "explain": True}
            _, body = app.dispatch("POST", "/query", payload)
            assert body["explain"]["sampled"] is True
            # The rate sampler was never consulted for the decision.
            assert app.sampler.sampled == 0
        finally:
            app.manager.close()

    def test_explain_bypasses_the_cache(self, objects):
        app = self._app(objects, cache=ResultCache(16))
        try:
            plain = {"points": QUERY_POINTS, "operator": "SSD", "k": 2}
            app.dispatch("POST", "/query", plain)  # populate the cache
            _, cached = app.dispatch("POST", "/query", plain)
            assert cached["cached"] is True
            _, body = app.dispatch(
                "POST", "/query", dict(plain, explain=True)
            )
            assert body["cached"] is False
            assert _reconcile(body["explain"]) == {}
        finally:
            app.manager.close()

    def test_unexplained_query_has_no_explain_key(self, objects):
        app = self._app(objects)
        try:
            _, body = app.dispatch(
                "POST", "/query",
                {"points": QUERY_POINTS, "operator": "SSD", "k": 2},
            )
            assert "explain" not in body
        finally:
            app.manager.close()


def _fleet(objects, *, replication=1, router_kw=None, node_kw=None):
    apps, nodes = {}, {}
    for nid in ("n1", "n2", "n3"):
        manager = DatasetManager(
            objects, shards=3, partitioner="hash", backend="serial"
        )
        app = ServeApp(manager, node_id=nid, **(node_kw or {}))
        apps[nid] = app
        nodes[nid] = LocalNode(nid, app)
    router = RouterApp(
        nodes, shards=3, replication=replication, health_interval_s=0,
        hedge_ms=0, **(router_kw or {}),
    )
    return router, apps


class TestRouterExplain:
    def test_merged_explain_reconciles_exactly(self, objects):
        router, apps = _fleet(objects)
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                       "explain": True}
            status, body = router.dispatch("POST", "/query", payload)
            assert status == 200
            explain = body["explain"]
            assert explain["backend"] == "router"
            assert explain["sampled"] is True
            assert explain["stages"]
            assert _reconcile(explain) == {}
            # Every node that served a shard shows up with its timings.
            assert explain["nodes"]
            for entry in explain["nodes"].values():
                assert entry["fetches"]
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()

    def test_router_counters_are_the_sum_of_node_bags(self, objects):
        router, apps = _fleet(objects)
        try:
            payload = {"points": QUERY_POINTS, "operator": "PSD", "k": 2,
                       "explain": True}
            _, body = router.dispatch("POST", "/query", payload)
            explain = body["explain"]
            stage_sum: dict[str, int] = {}
            for row in explain["stages"]:
                for key, value in row["counters"].items():
                    stage_sum[key] = stage_sum.get(key, 0) + value
            for key, value in stage_sum.items():
                assert explain["counters"].get(key, 0) >= value
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()

    def test_router_explain_bypasses_router_cache(self, objects):
        router, apps = _fleet(
            objects, router_kw={"cache": ResultCache(16)}
        )
        try:
            plain = {"points": QUERY_POINTS, "operator": "SSD", "k": 2}
            router.dispatch("POST", "/query", plain)
            _, cached = router.dispatch("POST", "/query", plain)
            assert cached["cached"] is True
            _, body = router.dispatch(
                "POST", "/query", dict(plain, explain=True)
            )
            assert body["cached"] is False and "explain" in body
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()

    def test_merge_explains_degrades_without_node_sections(self):
        merged = merge_explains(
            [{"shard": 0, "node": "old-node", "hedged": False,
              "explain": None}],
            refine_checks=2, refine_counters={"checks": 5}, hedged=False,
        )
        assert merged["counters"] == {"checks": 5}
        assert merged["nodes"]["old-node"]["fetches"] == [
            {"shard": 0, "hedged": False}
        ]


class TestWireContracts:
    def test_request_context_round_trips(self):
        ctx = RequestContext.new(
            request_id="req-1", sampled=True, deadline_ms=250.0
        )
        child = ctx.child(3)
        wire = child.to_wire()
        rebuilt = RequestContext.from_wire(json.loads(json.dumps(wire)))
        assert rebuilt.request_id == ctx.request_id
        assert rebuilt.trace_id == ctx.trace_id
        assert rebuilt.span_id == child.span_id
        assert rebuilt.parent_span_id == ctx.span_id
        assert rebuilt.sampled is True
        assert rebuilt.shard == 3
        assert rebuilt.trace_epoch == ctx.trace_epoch

    def test_sampler_is_deterministic(self):
        sampler = Sampler(0.25)
        decisions = [sampler.decide() for _ in range(100)]
        assert sum(decisions) == 25
        assert decisions == [
            (i % 4 == 3) for i in range(100)
        ]

    def test_sampled_request_yields_one_merged_trace(self, objects, tmp_path):
        trace_dir = tmp_path / "traces"
        router, apps = _fleet(
            objects,
            router_kw={"sample_rate": 1.0, "trace_dir": trace_dir},
        )
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                       "cache": False}
            status, _ = router.dispatch(
                "POST", "/query", payload,
                {"X-Request-Id": "wire-req-1"},
            )
            assert status == 200
            # Exactly one merged Chrome trace document for the request.
            files = sorted(trace_dir.glob("trace-*.json"))
            assert [f.name for f in files] == ["trace-wire-req-1.json"]
            doc = json.loads(files[0].read_text())
            events = doc["traceEvents"]
            assert events, "merged trace has no events"
            pids = {e.get("pid") for e in events}
            assert len(pids) >= 1
            # The nodes were forced by X-Sampled: their own rate
            # samplers never decided anything.
            for app in apps.values():
                assert app.sampler.decisions == 0
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()
