"""Tests for convex hull extraction (the geometric filter substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convexhull import (
    _frank_wolfe_in_hull,
    convex_hull,
    convex_hull_indices,
    point_in_hull,
)

point_clouds_2d = st.lists(
    st.lists(st.floats(-50, 50), min_size=2, max_size=2),
    min_size=1,
    max_size=15,
).map(np.asarray)


class TestHull2D:
    def test_square(self):
        pts = np.array(
            [[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5], [0.3, 0.7]]
        )
        idx = convex_hull_indices(pts)
        assert sorted(idx) == [0, 1, 2, 3]

    def test_collinear_points_keep_extremes(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        hull = convex_hull(pts)
        as_set = {tuple(p) for p in hull}
        assert (0.0, 0.0) in as_set
        assert (3.0, 3.0) in as_set
        # Interior collinear points may be dropped.
        assert len(hull) <= 4

    def test_duplicates_collapsed(self):
        pts = np.array([[0, 0], [0, 0], [1, 0], [1, 0], [0, 1]])
        hull = convex_hull(pts)
        assert len(hull) == 3

    def test_single_and_pair(self):
        assert len(convex_hull(np.array([[1.0, 2.0]]))) == 1
        assert len(convex_hull(np.array([[1.0, 2.0], [3.0, 4.0]]))) == 2

    def test_empty(self):
        assert convex_hull_indices(np.empty((0, 2))) == []

    @given(point_clouds_2d)
    @settings(max_examples=80, deadline=None)
    def test_hull_contains_all_points(self, pts):
        """Every input point must be a convex combination of hull vertices."""
        hull = convex_hull(pts)
        assert len(hull) >= 1
        for p in pts:
            assert point_in_hull(p, hull)

    @given(point_clouds_2d)
    @settings(max_examples=50, deadline=None)
    def test_hull_vertices_are_input_points(self, pts):
        idx = convex_hull_indices(pts)
        assert all(0 <= i < len(pts) for i in idx)
        assert len(set(idx)) == len(idx)


class TestHull1D:
    def test_extremes_only(self):
        pts = np.array([[3.0], [1.0], [7.0], [5.0]])
        hull = convex_hull(pts)
        assert sorted(v[0] for v in hull) == [1.0, 7.0]


class TestHullHighDim:
    def test_3d_cube_corners_survive(self):
        corners = np.array(
            [
                [0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                [1, 1, 0], [1, 0, 1], [0, 1, 1], [1, 1, 1],
            ],
            dtype=float,
        )
        center = np.array([[0.5, 0.5, 0.5]])
        pts = np.vstack([corners, center])
        idx = convex_hull_indices(pts)
        # All 8 corners must be kept; the center must be dropped.
        assert set(range(8)).issubset(set(idx))
        assert 8 not in idx

    def test_conservative_never_empty(self, rng):
        pts = rng.normal(size=(10, 4))
        idx = convex_hull_indices(pts)
        assert idx  # dropping everything would be incorrect


class TestFrankWolfe:
    def test_point_inside_triangle(self):
        tri = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        assert _frank_wolfe_in_hull(np.array([1.0, 1.0]), tri)

    def test_point_outside_triangle(self):
        tri = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        assert not _frank_wolfe_in_hull(np.array([5.0, 5.0]), tri)

    def test_vertex_is_inside(self):
        tri = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        assert _frank_wolfe_in_hull(np.array([0.0, 0.0]), tri)

    def test_empty_others(self):
        assert not _frank_wolfe_in_hull(np.array([0.0]), np.empty((0, 1)))
