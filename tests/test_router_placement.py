"""Property tests for consistent-hash placement (repro.serve.placement).

The load-bearing claims behind the router tier:

* **Determinism** — two parties with the same node list agree on every
  owner (no process seed anywhere).
* **Minimal remapping** — a single join moves keys only *onto* the new
  node and a single leave moves keys only *off* the leaver; no key ever
  changes hands between two uninvolved nodes.  Quantitatively, the moved
  fraction tracks shards/N.
* **Replica spread** — a replica group of R never co-locates two copies
  on one node while the ring has at least R members.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.placement import HashRing, PlacementMap, shard_of, stable_hash

# Node-id pools: short, distinct, shrink-friendly.
_node_ids = st.integers(min_value=0, max_value=99).map(lambda i: f"node-{i}")
_node_sets = st.lists(_node_ids, min_size=2, max_size=8, unique=True)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_64_bit_range(self):
        for key in ("", "a", "shard|7", "x" * 100):
            assert 0 <= stable_hash(key) < 2**64

    def test_shard_of_type_tagged(self):
        # Int 5 and string "5" are distinct oids; nothing forces their
        # shards to collide (they may by chance — just not by key reuse).
        assert shard_of(5, 1_000_000) != shard_of("5", 1_000_000)

    def test_shard_of_rejects_empty(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)


class TestRingMembership:
    def test_duplicate_join_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    def test_unknown_leave_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove_node("b")

    def test_empty_ring_owner(self):
        assert HashRing().replicas("k", 1) == ()
        with pytest.raises(LookupError):
            HashRing().owner("k")

    def test_order_insensitive(self):
        keys = [f"k{i}" for i in range(50)]
        a = HashRing(["x", "y", "z"])
        b = HashRing(["z", "x", "y"])
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]


class TestMinimalRemap:
    """Join/leave move keys only to/from the changed node."""

    @given(nodes=_node_sets, joiner=_node_ids)
    @settings(max_examples=60, deadline=None)
    def test_join_moves_keys_only_onto_joiner(self, nodes, joiner):
        if joiner in nodes:
            return
        keys = [f"key-{i}" for i in range(128)]
        ring = HashRing(nodes)
        before = {k: ring.owner(k) for k in keys}
        ring.add_node(joiner)
        after = {k: ring.owner(k) for k in keys}
        moved = {k for k in keys if before[k] != after[k]}
        for k in moved:
            assert after[k] == joiner, (
                f"join of {joiner} reshuffled {k}: "
                f"{before[k]} -> {after[k]}"
            )
        # Quantitative sanity: the moved share tracks 1/(N+1).  The exact
        # per-draw fraction fluctuates with vnode placement, so the gate
        # is deliberately loose — 3x expectation plus slack — and the
        # structural check above carries the real minimality claim.
        expected = len(keys) / (len(nodes) + 1)
        assert len(moved) <= 3 * expected + 4

    @given(nodes=_node_sets)
    @settings(max_examples=60, deadline=None)
    def test_leave_moves_keys_only_off_leaver(self, nodes):
        keys = [f"key-{i}" for i in range(128)]
        ring = HashRing(nodes)
        leaver = sorted(nodes)[0]
        before = {k: ring.owner(k) for k in keys}
        ring.remove_node(leaver)
        after = {k: ring.owner(k) for k in keys}
        for k in keys:
            if before[k] != after[k]:
                assert before[k] == leaver, (
                    f"leave of {leaver} reshuffled {k}: "
                    f"{before[k]} -> {after[k]}"
                )
        moved = sum(1 for k in keys if before[k] != after[k])
        expected = len(keys) / len(nodes)
        assert moved <= 3 * expected + 4

    @given(nodes=_node_sets, r=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_leave_keeps_surviving_replicas(self, nodes, r):
        """A leaver's surviving replica-set members keep their copy.

        ``old - {leaver}`` ⊆ ``new``: failover never needs to re-fetch a
        shard from a node that already had it.
        """
        ring = HashRing(nodes)
        leaver = sorted(nodes)[-1]
        keys = [f"key-{i}" for i in range(64)]
        before = {k: set(ring.replicas(k, r)) for k in keys}
        ring.remove_node(leaver)
        for k in keys:
            survivors = before[k] - {leaver}
            assert survivors <= set(ring.replicas(k, r))

    def test_mean_remap_tracks_shards_over_n(self):
        """Averaged over many joins, moved keys ~= shards / N."""
        shards = 256
        keys = [f"shard|{i}" for i in range(shards)]
        ratios = []
        for trial in range(12):
            nodes = [f"t{trial}-n{i}" for i in range(4)]
            ring = HashRing(nodes)
            before = {k: ring.owner(k) for k in keys}
            ring.add_node(f"t{trial}-joiner")
            moved = sum(
                1 for k in keys if before[k] != ring.owner(k)
            )
            ratios.append(moved / (shards / (len(nodes) + 1)))
        mean = sum(ratios) / len(ratios)
        assert 0.5 <= mean <= 1.5, f"mean remap ratio {mean:.2f} off 1.0"


class TestReplicaGroups:
    @given(
        nodes=_node_sets,
        r=st.integers(min_value=1, max_value=8),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_colocated(self, nodes, r, shards):
        """Groups hold min(R, N) *distinct* nodes — never two copies on
        one node while the fleet is big enough."""
        pm = PlacementMap(nodes, shards=shards, replication=r)
        for sid, owners in pm.table().items():
            assert len(owners) == len(set(owners))
            assert len(owners) == min(r, len(nodes))

    @given(nodes=_node_sets, shards=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_two_routers_agree(self, nodes, shards):
        a = PlacementMap(list(nodes), shards=shards, replication=2)
        b = PlacementMap(list(reversed(nodes)), shards=shards, replication=2)
        assert a.table() == b.table()

    def test_shards_for_covers_table(self):
        pm = PlacementMap(["a", "b", "c"], shards=16, replication=2)
        for sid in range(16):
            for node in pm.owners(sid):
                assert sid in pm.shards_for(node)

    def test_owners_of_uses_shard_of(self):
        pm = PlacementMap(["a", "b", "c"], shards=16, replication=2)
        assert pm.owners_of("obj-1") == pm.owners(shard_of("obj-1", 16))

    def test_membership_invalidates_table(self):
        pm = PlacementMap(["a", "b"], shards=8, replication=2)
        before = pm.table()
        pm.add_node("c")
        assert pm.nodes == ("a", "b", "c")
        after = pm.table()
        assert before is not after
        pm.remove_node("c")
        assert pm.table() == before

    def test_cannot_remove_last_node(self):
        pm = PlacementMap(["a"], shards=4)
        with pytest.raises(ValueError):
            pm.remove_node("a")

    def test_to_dict_round(self):
        pm = PlacementMap(["a", "b"], shards=4, replication=2)
        view = pm.to_dict()
        assert view["shards"] == 4
        assert view["replication"] == 2
        assert set(view["table"]) == {"0", "1", "2", "3"}
        for owners in view["table"].values():
            assert set(owners) <= {"a", "b"}
