"""Tests for the experiment dataset cache."""

import numpy as np
import pytest

from repro.experiments.cache import DatasetCache, cache_key
from repro.objects.uncertain import UncertainObject

from .conftest import random_object


class TestCacheKey:
    def test_order_insensitive(self):
        assert cache_key(a=1, b="x") == cache_key(b="x", a=1)

    def test_value_sensitive(self):
        assert cache_key(a=1) != cache_key(a=2)

    def test_stringifies_odd_values(self):
        assert cache_key(p=3.5, q=(1, 2)) == cache_key(p=3.5, q=(1, 2))


class TestDatasetCache:
    def test_generate_once(self, tmp_path, rng):
        cache = DatasetCache(tmp_path / "cache")
        calls = []

        def generate():
            calls.append(1)
            return [random_object(np.random.default_rng(0), oid=i) for i in range(5)]

        first = cache.get_or_create(generate, kind="demo", seed=0)
        second = cache.get_or_create(generate, kind="demo", seed=0)
        assert len(calls) == 1
        assert [o.oid for o in first] == [o.oid for o in second]
        assert all(
            np.allclose(a.points, b.points) for a, b in zip(first, second)
        )

    def test_different_params_different_datasets(self, tmp_path):
        cache = DatasetCache(tmp_path / "cache")

        def gen_for(seed):
            return lambda: [
                UncertainObject([[float(seed)]], oid=seed)
            ]

        a = cache.get_or_create(gen_for(1), seed=1)
        b = cache.get_or_create(gen_for(2), seed=2)
        assert a[0].points[0, 0] == 1.0
        assert b[0].points[0, 0] == 2.0

    def test_clear(self, tmp_path):
        cache = DatasetCache(tmp_path / "cache")
        cache.get_or_create(lambda: [UncertainObject([[0.0]])], seed=9)
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_clear_missing_dir(self, tmp_path):
        assert DatasetCache(tmp_path / "nope").clear() == 0
