"""DatasetManager: validated inserts, tombstone deletes, epochs, locking."""

from __future__ import annotations

import copy
import threading

import numpy as np
import pytest

from repro.core.nnc import NNCSearch
from repro.datasets import synthetic
from repro.obs.metrics import MetricsRegistry
from repro.objects.validate import InvalidInputError
from repro.serve.updates import (
    DatasetManager,
    DuplicateOidError,
    UnknownOidError,
)


def _dataset(n: int = 40, seed: int = 7):
    rng = np.random.default_rng(seed)
    centers = synthetic.independent_centers(n, 2, rng)
    return synthetic.make_objects(centers, 4, 40.0, rng)


def _query(seed: int = 1):
    rng = np.random.default_rng(seed)
    return synthetic.make_query(np.array([50.0, 50.0]), 3, 20.0, rng, oid="Q")


@pytest.fixture()
def manager():
    m = DatasetManager(_dataset(), shards=2)
    yield m
    m.close()


class TestLifecycle:
    def test_initial_load_registers_all_oids(self, manager):
        assert manager.size == 40
        assert manager.epoch == 0
        for shard_search in manager.search.searches:
            for obj in shard_search.objects:
                assert manager.get(obj.oid) is obj

    def test_duplicate_oid_in_initial_dataset_rejected(self):
        objects = _dataset(4)
        for obj in objects:
            obj.oid = "same"
        with pytest.raises(DuplicateOidError):
            DatasetManager(objects)

    def test_auto_oid_assignment_avoids_collisions(self):
        objects = _dataset(4)
        objects[0].oid = 0
        objects[1].oid = 2
        objects[2].oid = None
        objects[3].oid = None
        m = DatasetManager(objects)
        try:
            assert len({o.oid for _, o in m._registry.values()}) == 4
        finally:
            m.close()


class TestInsert:
    def test_insert_returns_oid_and_bumps_epoch(self, manager):
        oid, epoch = manager.insert([[1.0, 2.0], [3.0, 4.0]])
        assert epoch == 1
        assert manager.get(oid) is not None
        assert manager.size == 41

    def test_insert_visible_to_queries(self, manager):
        query = _query()
        manager.insert([[50.0, 50.0]], oid="bullseye")
        result, epoch = manager.query(query, "FSD")
        assert "bullseye" in result.oids()
        assert epoch == manager.epoch

    def test_duplicate_oid_rejected_without_epoch_bump(self, manager):
        manager.insert([[1.0, 1.0]], oid="X")
        before = manager.epoch
        with pytest.raises(DuplicateOidError):
            manager.insert([[2.0, 2.0]], oid="X")
        assert manager.epoch == before

    def test_malformed_points_rejected(self, manager):
        before = manager.epoch
        with pytest.raises(InvalidInputError):
            manager.insert([[1.0], [2.0, 3.0]])  # ragged
        assert manager.epoch == before

    def test_nan_points_rejected_under_strict(self, manager):
        with pytest.raises(InvalidInputError) as excinfo:
            manager.insert([[float("nan"), 1.0]])
        assert not excinfo.value.report.clean

    def test_negative_probs_rejected(self, manager):
        with pytest.raises(InvalidInputError):
            manager.insert([[1.0, 2.0], [3.0, 4.0]], [0.5, -0.5])

    def test_repair_policy_normalizes_instead_of_rejecting(self):
        m = DatasetManager(_dataset(10), on_invalid="repair")
        try:
            oid, _ = m.insert([[1.0, 2.0], [3.0, 4.0]], [2.0, 6.0])
            obj = m.get(oid)
            assert np.isclose(obj.probs.sum(), 1.0)
        finally:
            m.close()


class TestDelete:
    def test_delete_bumps_epoch_and_hides_object(self, manager):
        query = _query()
        manager.insert([[50.0, 50.0]], oid="close")
        result, _ = manager.query(query, "FSD")
        assert "close" in result.oids()
        ok, epoch = manager.delete("close")
        assert ok and epoch == manager.epoch
        assert manager.get("close") is None
        result2, _ = manager.query(query, "FSD")
        assert "close" not in result2.oids()

    def test_unknown_oid_raises(self, manager):
        before = manager.epoch
        with pytest.raises(UnknownOidError):
            manager.delete("no-such-oid")
        assert manager.epoch == before

    def test_compaction_threshold_triggers_rebuild(self):
        m = DatasetManager(_dataset(10), shards=1, compact_threshold=0.3)
        try:
            oids = [o.oid for o in m.search.searches[0].objects]
            # Delete 4 of 10: the masked fraction crosses 0.3 and the shard
            # rebuilds, so no tombstones remain afterwards.
            for oid in oids[:4]:
                m.delete(oid)
            assert m.search.searches[0].masked_count == 0
            assert m.size == 6
        finally:
            m.close()

    def test_answers_identical_across_compaction(self):
        objects = _dataset(30, seed=9)
        query = _query(2)
        m = DatasetManager(objects, shards=2, compact_threshold=1.0)
        try:
            victims = [o.oid for o in objects[::7]]
            for oid in victims:
                m.delete(oid)
            masked, _ = m.query(query, "FSD", k=2)
            assert m.compact() == len(victims)
            compacted, _ = m.query(query, "FSD", k=2)
            assert sorted(masked.oids()) == sorted(compacted.oids())
            live = [o for o in objects if o.oid not in set(victims)]
            expected = NNCSearch(live).run(query, "FSD", k=2)
            assert sorted(compacted.oids()) == sorted(expected.oids())
        finally:
            m.close()


class TestConcurrency:
    def test_mixed_readers_and_writers_stay_consistent(self):
        m = DatasetManager(_dataset(30), shards=2, backend="serial")
        query = _query()
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    result, epoch = m.query(query, "FSD")
                    # Every answer must be self-consistent: all reported
                    # oids live at the epoch the lock released.
                    assert epoch <= m.epoch
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        def writer(tag: str):
            try:
                for i in range(8):
                    oid, _ = m.insert([[50.0, 50.0]], oid=f"{tag}-{i}")
                    m.delete(oid)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [
            threading.Thread(target=writer, args=(f"w{j}",)) for j in range(2)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        m.close()
        assert not errors, errors[0]
        assert m.epoch == 2 * 8 * 2  # every insert+delete bumped once
        assert m.size == 30

    def test_compaction_under_concurrent_readers(self):
        # A compaction-heavy churn: the low threshold makes almost every
        # delete rebuild shards while readers hold the read lock, so the
        # writer-preferring _RWLock handoff gets exercised hard.
        m = DatasetManager(
            _dataset(30), shards=2, backend="serial", compact_threshold=0.05
        )
        query = _query()
        errors: list[BaseException] = []
        epochs: list[int] = []
        stop = threading.Event()

        def reader():
            last = 0
            while not stop.is_set():
                try:
                    result, epoch = m.query(query, "FSD")
                    assert epoch >= last  # epochs never run backwards
                    last = epoch
                    for obj in result.candidates:
                        # No torn reads: candidate arrays stay intact
                        # across a concurrent shard rebuild.
                        assert np.isfinite(obj.points).all()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        def churner(tag: str):
            try:
                for i in range(12):
                    oid, _ = m.insert([[50.0, 50.0], [51.0, 51.0]],
                                      oid=f"{tag}-{i}")
                    _, epoch = m.delete(oid)
                    epochs.append(epoch)
                m.compact()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        churners = [
            threading.Thread(target=churner, args=(f"c{j}",))
            for j in range(2)
        ]
        for t in readers + churners:
            t.start()
        for t in churners:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors, errors[0]
        assert m.size == 30
        assert sorted(epochs) == sorted(set(epochs))  # each bump unique
        # Compaction left no tombstones behind and the survivors answer
        # identically to a freshly built index over the same objects.
        live = [
            obj
            for _, (_, obj) in sorted(
                m._registry.items(), key=lambda kv: str(kv[0])
            )
        ]
        fresh = NNCSearch([copy.deepcopy(o) for o in live])
        expected = sorted(
            str(o.oid) for o in fresh.run(query, "FSD", k=3).candidates
        )
        got = sorted(
            str(o.oid)
            for o in m.query(query, "FSD", k=3)[0].candidates
        )
        m.close()
        assert got == expected

    def test_gauges_track_epoch_and_size(self):
        registry = MetricsRegistry()
        m = DatasetManager(_dataset(10), metrics=registry)
        try:
            m.insert([[1.0, 2.0]], oid="g")
            assert registry.value("repro_serve_epoch") == 1.0
            assert registry.value("repro_serve_objects") == 11.0
            m.delete("g")
            assert registry.value("repro_serve_epoch") == 2.0
            assert registry.value("repro_serve_objects") == 10.0
        finally:
            m.close()
