"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.objects.uncertain import UncertainObject

# --------------------------------------------------------------------- #
# Global per-test timeout
# --------------------------------------------------------------------- #

#: Hard wall-clock cap per test, in seconds (0 disables).  Hand-rolled on
#: SIGALRM instead of pytest-timeout so the suite has no extra dependency;
#: a hung resilience test (deadlock in the degradation drain, a fault that
#: swallows the loop exit) fails loudly instead of wedging CI.
_TEST_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT", "180"))


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if (
        _TEST_TIMEOUT_S <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)

    def _alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {_TEST_TIMEOUT_S}s global test "
            "timeout (REPRO_TEST_TIMEOUT)"
        )

    old = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(_TEST_TIMEOUT_S)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)

# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #


@st.composite
def probability_vectors(draw, min_size: int = 1, max_size: int = 5):
    """Non-degenerate probability vectors summing to 1."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    raw = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0),
            min_size=n,
            max_size=n,
        )
    )
    arr = np.asarray(raw)
    return arr / arr.sum()


@st.composite
def distributions(draw, min_size: int = 1, max_size: int = 6):
    """Random DiscreteDistribution with small-integer-ish support."""
    from repro.stats.distribution import DiscreteDistribution

    n = draw(st.integers(min_value=min_size, max_value=max_size))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    probs = draw(probability_vectors(min_size=n, max_size=n))
    return DiscreteDistribution(values, probs)


@st.composite
def uncertain_objects(
    draw,
    dim: int = 2,
    min_instances: int = 1,
    max_instances: int = 4,
    coord_range: float = 20.0,
    uniform_probs: bool = False,
    grid: float | None = 1.0,
):
    """Random multi-instance objects on a coarse coordinate grid.

    The grid keeps distance ties likely, which exercises the tie-handling
    paths of the dominance checks.
    """
    m = draw(st.integers(min_value=min_instances, max_value=max_instances))
    coords = draw(
        st.lists(
            st.lists(
                st.floats(min_value=-coord_range, max_value=coord_range),
                min_size=dim,
                max_size=dim,
            ),
            min_size=m,
            max_size=m,
        )
    )
    pts = np.asarray(coords)
    if grid:
        pts = np.round(pts / grid) * grid
    if uniform_probs:
        probs = None
    else:
        probs = draw(probability_vectors(min_size=m, max_size=m))
    return UncertainObject(pts, probs)


# --------------------------------------------------------------------- #
# Plain fixtures
# --------------------------------------------------------------------- #


@pytest.fixture
def rng() -> np.random.Generator:
    """Seeded random generator for deterministic tests."""
    return np.random.default_rng(20150531)


def random_object(
    rng: np.random.Generator,
    dim: int = 2,
    m: int = 5,
    spread: float = 2.0,
    center_range: float = 20.0,
    oid=None,
    uniform_probs: bool = True,
) -> UncertainObject:
    """A random multi-instance object (helper for non-hypothesis tests)."""
    center = rng.uniform(0, center_range, size=dim)
    pts = rng.normal(center, spread, size=(m, dim))
    if uniform_probs:
        probs = None
    else:
        raw = rng.uniform(0.1, 1.0, size=m)
        probs = raw / raw.sum()
    return UncertainObject(pts, probs, oid=oid)


def random_scene(
    rng: np.random.Generator,
    n_objects: int = 20,
    dim: int = 2,
    m: int = 4,
    m_q: int = 3,
    spread: float = 2.0,
    uniform_probs: bool = True,
):
    """A random dataset plus query (helper for integration tests)."""
    objects = [
        random_object(rng, dim=dim, m=m, spread=spread, oid=i,
                      uniform_probs=uniform_probs)
        for i in range(n_objects)
    ]
    query = random_object(rng, dim=dim, m=m_q, spread=spread, oid="Q")
    return objects, query
