"""Property tests for the paper's theorems (Sections 4.1-4.3)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.geometry.mbr import mbr_dominates

from .conftest import random_scene, uncertain_objects


class TestTheorem2Containment:
    """F-SD ⊂ P-SD ⊂ SS-SD ⊂ S-SD (implications on random inputs)."""

    @given(
        uncertain_objects(max_instances=3),
        uncertain_objects(max_instances=3),
        uncertain_objects(max_instances=3, uniform_probs=True),
    )
    @settings(max_examples=120, deadline=None)
    def test_implication_chain(self, u, v, query):
        f = brute_f_dominates(u, v, query)
        p = brute_p_dominates(u, v, query)
        ss = brute_ss_dominates(u, v, query)
        s = brute_s_dominates(u, v, query)
        if f:
            assert p, "F-SD must imply P-SD"
        if p:
            assert ss, "P-SD must imply SS-SD"
        if ss:
            assert s, "SS-SD must imply S-SD"

    def test_strictness_witnesses(self):
        """The paper's separating examples: each containment is proper."""
        from repro.datasets.paper_examples import figure3, figure4, figure15

        f3 = figure3()
        assert brute_s_dominates(f3["A"], f3["C"], f3.query)
        assert not brute_ss_dominates(f3["A"], f3["C"], f3.query)
        f4 = figure4()
        assert brute_ss_dominates(f4["A"], f4["B"], f4.query)
        assert not brute_p_dominates(f4["A"], f4["B"], f4.query)
        assert brute_p_dominates(f4["A"], f4["C"], f4.query)
        assert not brute_f_dominates(f4["A"], f4["C"], f4.query)
        f15 = figure15()
        assert brute_p_dominates(f15["A"], f15["B"], f15.query)
        assert not brute_f_dominates(f15["A"], f15["B"], f15.query)


class TestTheorem3SingleInstanceQuery:
    """With |Q| = 1: P-SD = SS-SD = S-SD."""

    @given(
        uncertain_objects(max_instances=4),
        uncertain_objects(max_instances=4),
        uncertain_objects(min_instances=1, max_instances=1, uniform_probs=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_collapse(self, u, v, query):
        s = brute_s_dominates(u, v, query)
        ss = brute_ss_dominates(u, v, query)
        p = brute_p_dominates(u, v, query)
        assert s == ss == p


class TestTheorem4MBRValidation:
    """MBR-level F-SD implies instance-level dominance for all operators."""

    @pytest.mark.parametrize("seed", range(4))
    def test_validation_sound(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=14, m=3, m_q=2, spread=1.0)
        found = 0
        for u, v in itertools.permutations(objects, 2):
            if mbr_dominates(u.mbr, v.mbr, query.mbr, strict=True):
                found += 1
                assert brute_f_dominates(u, v, query)
                assert brute_p_dominates(u, v, query)
                assert brute_ss_dominates(u, v, query)
                assert brute_s_dominates(u, v, query)
        # The scene is spread out enough that some MBR dominances exist.
        assert found > 0


class TestTheorem9Transitivity:
    @pytest.mark.parametrize(
        "dominates",
        [brute_s_dominates, brute_ss_dominates, brute_p_dominates, brute_f_dominates],
        ids=["S-SD", "SS-SD", "P-SD", "F-SD"],
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_transitive_on_random_scenes(self, dominates, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=10, m=3, m_q=2, spread=1.5)
        n = len(objects)
        rel = np.zeros((n, n), dtype=bool)
        for i, j in itertools.permutations(range(n), 2):
            rel[i, j] = dominates(objects[i], objects[j], query)
        chains = 0
        for i, j, k in itertools.permutations(range(n), 3):
            if rel[i, j] and rel[j, k]:
                chains += 1
                assert rel[i, k], f"transitivity broken: {i}->{j}->{k}"
        assert chains > 0  # the scene must actually exercise the property


class TestAntisymmetry:
    """No operator may let two objects dominate each other."""

    @given(
        uncertain_objects(max_instances=3),
        uncertain_objects(max_instances=3),
        uncertain_objects(max_instances=2, uniform_probs=True),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_mutual(self, u, v, query):
        for dom in (
            brute_s_dominates,
            brute_ss_dominates,
            brute_p_dominates,
            brute_f_dominates,
        ):
            assert not (dom(u, v, query) and dom(v, u, query))
