"""Tests for the resilience layer: budgets, degradation, fault injection.

The load-bearing guarantee under test: a search interrupted by any budget or
recoverable fault still returns a *superset* of the exact NN candidate set
(the containment chain makes conservative non-dominance safe), flagged with a
:class:`DegradationReport`; a generous budget changes nothing.
"""

import time

import pytest

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.flow.maxflow import FlowBudgetError
from repro.obs import MetricsRegistry
from repro.resilience import (
    FAULT_SITES,
    Budget,
    BudgetExhausted,
    DegradationReport,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NumericalFault,
    RECOVERABLE_FAULTS,
)

from .conftest import random_scene

OPERATORS = ("SSD", "SSSD", "PSD", "FSD", "F+SD")


@pytest.fixture
def scene(rng):
    return random_scene(rng, n_objects=14, m=3)


def _exact_oids(search, query, operator, **ctx_kwargs):
    result = search.run(query, operator, ctx=QueryContext(query, **ctx_kwargs))
    assert result.exact
    return set(result.oids())


class TestBudget:
    def test_negative_limits_rejected(self):
        for kwargs in (
            {"deadline_ms": -1.0},
            {"max_dominance_checks": -1},
            {"max_flow_augmentations": -1},
        ):
            with pytest.raises(ValueError):
                Budget(**kwargs)

    def test_unlimited_budget_never_trips(self):
        b = Budget()
        b.arm()
        for _ in range(100):
            b.checkpoint("kernel")
            b.spend_dominance_checks(5)
        b.spend_augmentations(1000)
        assert b.remaining_augmentations() is None
        assert b.exhausted is None

    def test_dominance_cap_trips_at_cap(self):
        b = Budget(max_dominance_checks=3)
        b.spend_dominance_checks(3)  # exactly at the cap: fine
        with pytest.raises(BudgetExhausted) as exc:
            b.spend_dominance_checks(1)
        assert exc.value.reason == "dominance_checks"
        assert b.exhausted is exc.value

    def test_deadline_trips(self):
        b = Budget(deadline_ms=0.0)
        b.arm()
        time.sleep(0.002)
        with pytest.raises(BudgetExhausted) as exc:
            b.checkpoint("rtree-descent")
        assert exc.value.reason == "deadline"
        assert exc.value.site == "rtree-descent"

    def test_checkpoint_auto_arms(self):
        b = Budget(deadline_ms=10_000.0)
        b.checkpoint("kernel")  # must not raise, must start the clock
        assert b.elapsed_ms() >= 0.0

    def test_arm_idempotent(self):
        b = Budget(deadline_ms=10_000.0)
        b.arm()
        first = b._deadline_at
        b.arm()
        assert b._deadline_at == first

    def test_reset_reuses_budget(self):
        b = Budget(max_dominance_checks=1)
        with pytest.raises(BudgetExhausted):
            b.spend_dominance_checks(2)
        b.reset()
        assert b.exhausted is None
        b.spend_dominance_checks(1)  # back under the cap

    def test_remaining_augmentations(self):
        b = Budget(max_flow_augmentations=5)
        b.spend_augmentations(3)
        assert b.remaining_augmentations() == 2
        b.spend_augmentations(9)  # never raises
        assert b.remaining_augmentations() == 0

    def test_limits_and_spent_views(self):
        b = Budget(deadline_ms=50.0, max_dominance_checks=7)
        b.spend_dominance_checks(2)
        assert b.limits()["max_dominance_checks"] == 7
        assert b.spent()["dominance_checks"] == 2


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("search", kind="segfault")
        with pytest.raises(ValueError):
            FaultSpec("search", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec("search", kind="nan", fraction=0.0)

    def test_error_fires_once_by_default(self):
        plan = FaultPlan((FaultSpec("cdf-scan"),))
        with pytest.raises(InjectedFault) as exc:
            plan.fire("cdf-scan")
        assert exc.value.site == "cdf-scan"
        plan.fire("cdf-scan")  # count=1 spent: second visit is clean
        assert plan.fired_count() == 1

    def test_after_window(self):
        plan = FaultPlan((FaultSpec("maxflow", after=2),))
        plan.fire("maxflow")
        plan.fire("maxflow")
        with pytest.raises(InjectedFault):
            plan.fire("maxflow")

    def test_other_sites_unaffected(self):
        plan = FaultPlan((FaultSpec("cdf-scan"),))
        for site in FAULT_SITES:
            if site != "cdf-scan":
                plan.fire(site)
        assert plan.fired_count() == 0

    def test_probabilistic_firing_is_seed_deterministic(self):
        def run(seed):
            plan = FaultPlan(
                (FaultSpec("search", count=None, probability=0.5),), seed=seed
            )
            fired = []
            for _ in range(50):
                try:
                    plan.fire("search")
                    fired.append(0)
                except InjectedFault:
                    fired.append(1)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert sum(run(7)) > 0

    def test_latency_sleeps_instead_of_raising(self):
        plan = FaultPlan((FaultSpec("search", kind="latency", latency_ms=5.0),))
        t0 = time.perf_counter()
        plan.fire("search")
        assert (time.perf_counter() - t0) >= 0.004
        assert plan.fired_events == [("search", "latency")]

    def test_corrupt_poisons_a_copy(self):
        import numpy as np

        plan = FaultPlan((FaultSpec("distance-matrix", kind="nan"),), seed=1)
        arr = np.ones((4, 4))
        out = plan.corrupt("distance-matrix", arr)
        assert out is not arr
        assert np.isfinite(arr).all()
        assert not np.isfinite(out).all()
        # spec spent: next call passes the array through untouched
        again = plan.corrupt("distance-matrix", arr)
        assert again is arr

    def test_recoverable_taxonomy(self):
        assert InjectedFault("x") .__class__ in RECOVERABLE_FAULTS
        assert isinstance(NumericalFault("x"), RECOVERABLE_FAULTS)
        assert not isinstance(BudgetExhausted("deadline", "x"), RECOVERABLE_FAULTS)


class TestDegradedSearch:
    def test_zero_deadline_returns_superset(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        for op in OPERATORS:
            exact = _exact_oids(search, query, op)
            ctx = QueryContext(query, budget=Budget(deadline_ms=0.0))
            result = search.run(query, op, ctx=ctx)
            assert not result.exact
            assert result.degradation.reason == "deadline"
            assert result.degradation.phase == "traversal"
            assert set(result.oids()) >= exact, op

    def test_dominance_cap_returns_superset(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        for op in OPERATORS:
            exact = _exact_oids(search, query, op)
            ctx = QueryContext(query, budget=Budget(max_dominance_checks=2))
            result = search.run(query, op, ctx=ctx)
            got = set(result.oids())
            assert got >= exact, op
            if not result.exact:
                assert result.degradation.reason == "dominance_checks"

    def test_flow_cap_degrades_psd_without_aborting(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        exact = _exact_oids(search, query, "PSD")
        ctx = QueryContext(query, budget=Budget(max_flow_augmentations=0))
        result = search.run(query, "PSD", ctx=ctx)
        assert set(result.oids()) >= exact
        if not result.exact:
            # Traversal ran to completion; only flow decisions degraded.
            assert result.degradation.phase == "completed"
            assert result.degradation.reason == "flow_augmentations"
            assert result.degradation.unresolved_checks > 0

    def test_generous_budget_is_exact(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        budget = Budget(
            deadline_ms=60_000.0,
            max_dominance_checks=10**9,
            max_flow_augmentations=10**9,
        )
        for op in OPERATORS:
            exact = _exact_oids(search, query, op)
            budget.reset()
            ctx = QueryContext(query, budget=budget)
            result = search.run(query, op, ctx=ctx)
            assert result.exact, op
            assert set(result.oids()) == exact, op

    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_single_fault_any_site_returns_superset(self, scene, site):
        objects, query = scene
        search = NNCSearch(objects)
        for op in OPERATORS:
            exact = _exact_oids(search, query, op)
            plan = FaultPlan((FaultSpec(site, count=None),), seed=3)
            ctx = QueryContext(query, faults=plan)
            result = search.run(query, op, ctx=ctx)
            assert set(result.oids()) >= exact, (op, site)
            if plan.fired_count() and site != "search":
                # Any fired fault off the root site degrades, never crashes.
                assert result.degradation is not None or set(
                    result.oids()
                ) == exact

    def test_nan_corruption_recovers_conservatively(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        for op in OPERATORS:
            exact = _exact_oids(search, query, op)
            plan = FaultPlan(
                (FaultSpec("distance-matrix", kind="nan", count=2),), seed=5
            )
            ctx = QueryContext(query, faults=plan)
            result = search.run(query, op, ctx=ctx)
            assert set(result.oids()) >= exact, op

    def test_stream_consumers_get_last_degradation(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        ctx = QueryContext(query, budget=Budget(deadline_ms=0.0))
        list(search.stream(query, "SSD", ctx=ctx))
        assert isinstance(search.last_degradation, DegradationReport)
        assert "superset" in search.last_degradation.summary()

    def test_last_degradation_is_isolated_per_thread(self, scene):
        # A degraded query on one thread must not leak its report into a
        # concurrent exact query's view (the serving layer runs many
        # requests through one NNCSearch).
        import threading

        objects, query = scene
        search = NNCSearch(objects)
        seen_exact: list = []
        barrier = threading.Barrier(2)

        def degraded():
            barrier.wait()
            ctx = QueryContext(query, budget=Budget(deadline_ms=0.0))
            search.run(query, "SSD", ctx=ctx)

        def exact():
            barrier.wait()
            search.run(query, "SSD", ctx=QueryContext(query))
            seen_exact.append(search.last_degradation)

        threads = [
            threading.Thread(target=degraded),
            threading.Thread(target=exact),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen_exact == [None]

    def test_degradation_report_shape(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        ctx = QueryContext(query, budget=Budget(max_dominance_checks=1))
        result = search.run(query, "SSSD", ctx=ctx)
        report = result.degradation
        assert report is not None
        d = report.to_dict()
        assert d["reason"] == "dominance_checks"
        assert d["budget"]["max_dominance_checks"] == 1
        assert d["spent"]["dominance_checks"] >= 1
        assert d["conservative_accepts"] >= 0

    def test_degraded_queries_metric_exported(self, scene):
        objects, query = scene
        search = NNCSearch(objects)
        registry = MetricsRegistry()
        ctx = QueryContext(
            query, metrics=registry, budget=Budget(deadline_ms=0.0)
        )
        result = search.run(query, "SSD", ctx=ctx)
        assert not result.exact
        assert registry.value(
            "repro_degraded_queries_total",
            {"operator": "SSD", "reason": "deadline"},
        ) == 1
        assert registry.total("repro_queries_total") == 1

    def test_budget_exhausted_not_swallowed_outside_search(self):
        # Direct operator use without the driver surfaces the exception.
        b = Budget(max_dominance_checks=0)
        with pytest.raises(BudgetExhausted):
            b.spend_dominance_checks(1)

    def test_flow_budget_error_carries_diagnostics(self):
        from repro.flow.maxflow import FlowNetwork, max_flow

        net = FlowNetwork(2)
        net.add_edge(0, 1, 3.0)
        with pytest.raises(FlowBudgetError) as exc:
            max_flow(net, 0, 1, max_augmentations=0)
        assert exc.value.limit == 0
        assert exc.value.augmentations >= 1
