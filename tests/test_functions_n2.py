"""Tests for the N2 family: the exact DP against brute-force enumeration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.n2 import (
    PossibleWorldScores,
    brute_force_rank_distribution,
    enumerate_worlds,
    expected_rank,
    global_topk_score,
    nn_probability,
    parameterized_rank_score,
    u_topk_score,
)
from repro.objects.uncertain import UncertainObject

from .conftest import random_scene, uncertain_objects


class TestEnumerateWorlds:
    def test_world_probabilities_sum_to_one(self, rng):
        objects, query = random_scene(rng, n_objects=3, m=2, m_q=2)
        total = sum(p for _, _, p in enumerate_worlds(objects, query))
        assert total == pytest.approx(1.0)

    def test_world_count(self):
        objects = [
            UncertainObject([[0.0], [1.0]]),
            UncertainObject([[2.0], [3.0], [4.0]]),
        ]
        query = UncertainObject([[5.0], [6.0]])
        worlds = list(enumerate_worlds(objects, query))
        assert len(worlds) == 2 * 3 * 2


class TestRankDistribution:
    def test_matches_bruteforce_small(self, rng):
        for seed in range(5):
            local = np.random.default_rng(seed)
            objects, query = random_scene(
                local, n_objects=3, m=2, m_q=2, uniform_probs=False
            )
            pw = PossibleWorldScores(objects, query)
            for i in range(len(objects)):
                exact = pw.rank_distribution(i)
                brute = brute_force_rank_distribution(i, objects, query)
                assert np.allclose(exact, brute, atol=1e-9), (seed, i)

    @given(
        uncertain_objects(max_instances=2),
        uncertain_objects(max_instances=2),
        uncertain_objects(max_instances=2),
        uncertain_objects(max_instances=2, uniform_probs=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce_property(self, a, b, c, query):
        objects = [a, b, c]
        pw = PossibleWorldScores(objects, query)
        for i in range(3):
            exact = pw.rank_distribution(i)
            brute = brute_force_rank_distribution(i, objects, query)
            assert np.allclose(exact, brute, atol=1e-9)

    def test_pmf_sums_to_one(self, rng):
        objects, query = random_scene(rng, n_objects=5, m=3, m_q=2)
        pw = PossibleWorldScores(objects, query)
        for i in range(5):
            assert pw.rank_distribution(i).sum() == pytest.approx(1.0)

    def test_cache_returns_same_array(self, rng):
        objects, query = random_scene(rng, n_objects=3, m=2, m_q=2)
        pw = PossibleWorldScores(objects, query)
        assert pw.rank_distribution(0) is pw.rank_distribution(0)

    def test_empty_objects_raise(self):
        with pytest.raises(ValueError):
            PossibleWorldScores([], UncertainObject([[0.0]]))


class TestScores:
    def test_nn_probabilities_sum_near_one(self, rng):
        # Without distance ties, exactly one object is NN per world.
        objects, query = random_scene(rng, n_objects=4, m=3, m_q=2)
        pw = PossibleWorldScores(objects, query)
        total = sum(pw.nn_probability(i) for i in range(4))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_expected_rank_bounds(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=3, m_q=2)
        pw = PossibleWorldScores(objects, query)
        for i in range(4):
            assert 1.0 - 1e-9 <= pw.expected_rank(i) <= 4.0 + 1e-9

    def test_topk_monotone_in_k(self, rng):
        objects, query = random_scene(rng, n_objects=5, m=2, m_q=2)
        pw = PossibleWorldScores(objects, query)
        for i in range(5):
            probs = [pw.topk_probability(i, k) for k in range(1, 6)]
            assert all(a <= b + 1e-9 for a, b in zip(probs, probs[1:]))
            assert probs[-1] == pytest.approx(1.0)

    def test_topk_validation(self, rng):
        objects, query = random_scene(rng, n_objects=2, m=2, m_q=2)
        with pytest.raises(ValueError):
            PossibleWorldScores(objects, query).topk_probability(0, 0)

    def test_parameterized_recovers_expected_rank(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=2, m_q=2)
        pw = PossibleWorldScores(objects, query)
        for i in range(4):
            assert pw.parameterized_score(i, lambda r: float(r)) == pytest.approx(
                pw.expected_rank(i)
            )

    def test_parameterized_recovers_nn_probability(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=2, m_q=2)
        pw = PossibleWorldScores(objects, query)
        omega = lambda r: -1.0 if r == 1 else 0.0  # noqa: E731
        for i in range(4):
            assert pw.parameterized_score(i, omega) == pytest.approx(
                -pw.nn_probability(i)
            )


class TestWrappers:
    def test_wrappers_consistent(self, rng):
        objects, query = random_scene(rng, n_objects=3, m=2, m_q=2)
        pw = PossibleWorldScores(objects, query)
        assert nn_probability(0, objects, query) == pytest.approx(
            pw.nn_probability(0)
        )
        assert expected_rank(1, objects, query) == pytest.approx(
            pw.expected_rank(1)
        )
        assert global_topk_score(2, objects, query, 2) == pytest.approx(
            -pw.topk_probability(2, 2)
        )
        assert u_topk_score(2, objects, query, 2) == global_topk_score(
            2, objects, query, 2
        )
        assert parameterized_rank_score(
            0, objects, query, lambda r: r
        ) == pytest.approx(pw.expected_rank(0))


class TestProbabilisticThresholdTopK:
    def test_threshold_filters(self, rng):
        from repro.functions.n2 import probabilistic_threshold_topk

        objects, query = random_scene(rng, n_objects=5, m=2, m_q=2)
        pw = PossibleWorldScores(objects, query)
        for k in (1, 2):
            for p in (0.1, 0.5, 0.9):
                got = probabilistic_threshold_topk(objects, query, k, p)
                want = [
                    i for i in range(5) if pw.topk_probability(i, k) >= p - 1e-12
                ]
                assert got == want

    def test_threshold_one_requires_certainty(self, rng):
        from repro.functions.n2 import probabilistic_threshold_topk

        objects, query = random_scene(rng, n_objects=4, m=2, m_q=2)
        got = probabilistic_threshold_topk(objects, query, len(objects), 1.0)
        assert got == list(range(len(objects)))  # top-n is certain

    def test_invalid_threshold(self, rng):
        from repro.functions.n2 import probabilistic_threshold_topk

        objects, query = random_scene(rng, n_objects=2, m=2, m_q=2)
        with pytest.raises(ValueError):
            probabilistic_threshold_topk(objects, query, 1, 0.0)
