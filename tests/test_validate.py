"""Tests for input validation, quarantine policies, and dataset format errors."""

import numpy as np
import pytest

from repro.objects import (
    DatasetFormatError,
    InvalidInputError,
    UncertainObject,
    load_objects,
    save_objects,
    validate_objects,
    validate_rows,
)
from repro.obs import MetricsRegistry


def _clean_rows():
    return [
        (np.array([[0.0, 0.0], [1.0, 1.0]]), None, "a"),
        (np.array([[2.0, 2.0]]), np.array([1.0]), "b"),
    ]


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="on_invalid"):
            validate_rows(_clean_rows(), on_invalid="explode")

    def test_clean_rows_pass_all_policies(self):
        for policy in ("strict", "repair", "skip"):
            kept, report = validate_rows(_clean_rows(), on_invalid=policy)
            assert len(kept) == 2
            assert report.clean
            assert "clean" in report.summary()

    def test_strict_rejects_with_full_report(self):
        rows = _clean_rows() + [
            (np.array([[np.nan, 0.0]]), None, "bad1"),
            (np.array([[1.0, 1.0]]), np.array([-0.5]), "bad2"),
        ]
        with pytest.raises(InvalidInputError) as exc:
            validate_rows(rows, on_invalid="strict")
        codes = {i.code for i in exc.value.report.issues}
        assert codes == {"non-finite-coord", "negative-weight"}
        assert all(i.action == "rejected" for i in exc.value.report.issues)

    def test_skip_quarantines_dirty_objects(self):
        rows = _clean_rows() + [(np.array([[np.inf, 0.0]]), None, "dirty")]
        kept, report = validate_rows(rows, on_invalid="skip")
        assert [o.oid for o in kept] == ["a", "b"]
        assert report.n_dropped == 1
        assert report.issues[0].action == "dropped"

    def test_repair_drops_nonfinite_instances(self):
        rows = [(np.array([[0.0, 0.0], [np.nan, 1.0], [2.0, 2.0]]), None, "x")]
        kept, report = validate_rows(rows, on_invalid="repair")
        assert len(kept) == 1 and len(kept[0]) == 2
        assert report.n_repaired == 1
        assert report.issues[0].action == "repaired"

    def test_repair_clamps_weights_and_renormalises(self):
        rows = [
            (
                np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]),
                np.array([0.5, -1.0, np.nan]),
                "w",
            )
        ]
        kept, report = validate_rows(rows, on_invalid="repair")
        assert len(kept) == 1
        np.testing.assert_allclose(kept[0].probs, [1.0, 0.0, 0.0])
        assert {i.code for i in report.issues} == {
            "negative-weight",
            "non-finite-weight",
        }

    def test_repair_cannot_fix_zero_mass(self):
        rows = [(np.array([[0.0, 0.0]]), np.array([0.0]), "zero")]
        kept, report = validate_rows(rows, on_invalid="repair")
        assert not kept
        assert report.issues[-1].code == "zero-mass"
        assert report.n_dropped == 1

    def test_empty_instances_unrepairable(self):
        kept, report = validate_rows(
            [(np.zeros((0, 2)), None, "e")], on_invalid="repair"
        )
        assert not kept
        assert report.issues[0].code == "empty-instances"

    def test_dim_mismatch_anchored_to_first_wellformed_row(self):
        rows = [
            (np.array([[np.nan, 0.0]]), None, "dropped-but-2d"),
            (np.array([[1.0, 2.0, 3.0]]), None, "threed"),
            (np.array([[1.0, 2.0]]), None, "twod"),
        ]
        kept, report = validate_rows(rows, on_invalid="skip")
        # The quarantined first row still defines dimensionality 2.
        assert [o.oid for o in kept] == ["twod"]
        assert any(i.code == "dim-mismatch" for i in report.issues)

    def test_count_mismatch(self):
        rows = [(np.array([[0.0, 0.0], [1.0, 1.0]]), np.array([1.0]), "c")]
        kept, _ = validate_rows(rows, on_invalid="skip")
        assert not kept
        kept, _ = validate_rows(rows, on_invalid="repair")
        np.testing.assert_allclose(kept[0].probs, [0.5, 0.5])

    def test_explicit_dim_overrides_inference(self):
        kept, report = validate_rows(
            [(np.array([[1.0, 2.0]]), None, "a")], on_invalid="skip", dim=3
        )
        assert not kept
        assert report.issues[0].code == "dim-mismatch"

    def test_metrics_export(self):
        registry = MetricsRegistry()
        validate_rows(
            _clean_rows() + [(np.zeros((0, 2)), None, "e")],
            on_invalid="skip",
            metrics=registry,
        )
        assert registry.value(
            "repro_validation_issues_total",
            {"code": "empty-instances", "action": "dropped"},
        ) == 1
        assert registry.value(
            "repro_quarantined_objects_total", {"policy": "skip"}
        ) == 1


class TestValidateObjects:
    def test_clean_objects_pass_by_identity(self):
        objs = [UncertainObject([[0.0, 0.0]], oid=1)]
        out, report = validate_objects(objs, on_invalid="strict")
        assert out[0] is objs[0]
        assert report.clean

    def test_poisoned_object_repaired(self):
        obj = UncertainObject([[0.0, 0.0], [1.0, 1.0]], oid=1)
        obj.points[1, 0] = np.inf  # corrupted after construction
        out, report = validate_objects([obj], on_invalid="repair")
        assert len(out) == 1 and len(out[0]) == 1
        assert report.n_repaired == 1

    def test_strict_raises_on_poisoned_object(self):
        obj = UncertainObject([[0.0, 0.0]], oid=1)
        obj.points[0, 0] = np.nan
        with pytest.raises(InvalidInputError):
            validate_objects([obj], on_invalid="strict")


class TestDatasetFormatErrors:
    def _write(self, tmp_path, **overrides):
        """A valid archive with selected fields overridden/removed."""
        fields = {
            "version": np.int64(1),
            "offsets": np.array([0, 2, 3], dtype=np.int64),
            "points": np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]),
            "probs": np.array([0.5, 0.5, 1.0]),
            "oids": np.array(["a", "b"]),
        }
        for key, value in overrides.items():
            if value is None:
                del fields[key]
            else:
                fields[key] = value
        path = tmp_path / "ds.npz"
        np.savez_compressed(path, **fields)
        return path

    def test_valid_archive_loads(self, tmp_path):
        objs = load_objects(self._write(tmp_path))
        assert [o.oid for o in objs] == ["a", "b"]

    def test_unreadable_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a zip file")
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(path)
        assert exc.value.path == path
        assert exc.value.field is None

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_objects(tmp_path / "absent.npz")

    def test_missing_field(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(self._write(tmp_path, probs=None))
        assert exc.value.field == "probs"

    def test_bad_version(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(self._write(tmp_path, version=np.int64(99)))
        assert exc.value.field == "version"
        assert "99" in str(exc.value)

    def test_offsets_not_starting_at_zero(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(
                self._write(tmp_path, offsets=np.array([1, 3], dtype=np.int64))
            )
        assert exc.value.field == "offsets"

    def test_offsets_end_mismatch(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(
                self._write(tmp_path, offsets=np.array([0, 2, 9], dtype=np.int64))
            )
        assert exc.value.field == "offsets"

    def test_offsets_decreasing(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(
                self._write(
                    tmp_path, offsets=np.array([0, 3, 2, 3], dtype=np.int64),
                    oids=np.array(["a", "b", "c"]),
                )
            )
        assert exc.value.field == "offsets"
        assert exc.value.row == 1

    def test_points_not_2d(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(self._write(tmp_path, points=np.zeros(3)))
        assert exc.value.field == "points"

    def test_probs_shape_mismatch(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(self._write(tmp_path, probs=np.array([1.0])))
        assert exc.value.field == "probs"

    def test_oids_shape_mismatch(self, tmp_path):
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(self._write(tmp_path, oids=np.array(["a"])))
        assert exc.value.field == "oids"

    def test_semantic_row_error_carries_row(self, tmp_path):
        # Zero-mass object: structurally fine, semantically unbuildable.
        path = self._write(tmp_path, probs=np.array([0.0, 0.0, 1.0]))
        with pytest.raises(DatasetFormatError) as exc:
            load_objects(path)
        assert exc.value.row == 0

    def test_on_invalid_quarantines_instead(self, tmp_path):
        path = self._write(tmp_path, probs=np.array([0.0, 0.0, 1.0]))
        kept, report = load_objects(path, on_invalid="skip")
        assert [o.oid for o in kept] == ["b"]
        assert report.n_dropped == 1


class TestGeneratorWiring:
    def test_make_objects_quarantines_nan_centers(self):
        from repro.datasets.synthetic import independent_centers, make_objects

        rng = np.random.default_rng(0)
        centers = independent_centers(6, 2, rng)
        centers[2, 1] = np.nan
        objs = make_objects(centers, 3, 10.0, rng, on_invalid="skip")
        assert len(objs) == 5
        with pytest.raises(InvalidInputError):
            make_objects(centers, 3, 10.0, rng, on_invalid="strict")

    def test_semireal_generators_accept_policy(self):
        from repro.datasets.semireal import gowalla_like, nba_like

        rng = np.random.default_rng(1)
        assert len(nba_like(4, 3, rng, on_invalid="strict")) == 4
        assert len(gowalla_like(4, 3, rng, on_invalid="strict")) == 4
