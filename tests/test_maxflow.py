"""Tests for the Dinic max-flow solver (cross-checked against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.flow.maxflow import FlowNetwork, max_flow


class TestBasics:
    def test_single_edge(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 3.5)
        assert max_flow(net, 0, 1) == pytest.approx(3.5)

    def test_two_disjoint_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(0, 2, 2.0)
        net.add_edge(2, 3, 2.0)
        assert max_flow(net, 0, 3) == pytest.approx(3.0)

    def test_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 0.25)
        assert max_flow(net, 0, 2) == pytest.approx(0.25)

    def test_no_path(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        assert max_flow(net, 0, 2) == 0.0

    def test_needs_residual_rerouting(self):
        # Classic example where a greedy augmenting path must be undone.
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(0, 2, 1.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(2, 3, 1.0)
        assert max_flow(net, 0, 3) == pytest.approx(2.0)

    def test_same_source_sink_raises(self):
        with pytest.raises(ValueError):
            max_flow(FlowNetwork(2), 0, 0)

    def test_negative_capacity_raises(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)

    def test_out_of_range_raises(self):
        net = FlowNetwork(2)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1.0)

    def test_edge_count(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 2, 1.0)
        assert net.edge_count == 2


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 12))
        density = 0.4
        edges = []
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < density:
                    edges.append((u, v, float(rng.uniform(0.1, 5.0))))
        net = FlowNetwork(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u, v, c in edges:
            net.add_edge(u, v, c)
            if g.has_edge(u, v):
                g[u][v]["capacity"] += c
            else:
                g.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(g, 0, n - 1)
        assert max_flow(net, 0, n - 1) == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_bipartite_transport(self, seed):
        """The exact network shape the P-SD reduction produces."""
        rng = np.random.default_rng(100 + seed)
        m, k = int(rng.integers(2, 6)), int(rng.integers(2, 6))
        u_probs = rng.dirichlet(np.ones(m))
        v_probs = rng.dirichlet(np.ones(k))
        adj = rng.random((m, k)) < 0.5
        net = FlowNetwork(m + k + 2)
        g = nx.DiGraph()
        source, sink = 0, m + k + 1
        for i in range(m):
            net.add_edge(source, 1 + i, float(u_probs[i]))
            g.add_edge(source, 1 + i, capacity=float(u_probs[i]))
        for j in range(k):
            net.add_edge(1 + m + j, sink, float(v_probs[j]))
            g.add_edge(1 + m + j, sink, capacity=float(v_probs[j]))
        for i in range(m):
            for j in range(k):
                if adj[i, j]:
                    net.add_edge(1 + i, 1 + m + j, 2.0)
                    g.add_edge(1 + i, 1 + m + j, capacity=2.0)
        expected = nx.maximum_flow_value(g, source, sink) if g.has_node(sink) else 0.0
        assert max_flow(net, source, sink) == pytest.approx(expected, abs=1e-9)

    def test_full_bipartite_saturates(self):
        m, k = 3, 2
        net = FlowNetwork(m + k + 2)
        for i in range(m):
            net.add_edge(0, 1 + i, 1.0 / m)
        for j in range(k):
            net.add_edge(1 + m + j, m + k + 1, 1.0 / k)
        for i in range(m):
            for j in range(k):
                net.add_edge(1 + i, 1 + m + j, 2.0)
        assert max_flow(net, 0, m + k + 1) == pytest.approx(1.0)


class TestAugmentationCap:
    """Regression tests for the resilience layer's flow-augmentation cap."""

    def _two_path_net(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(1, 3, 1.0)
        net.add_edge(0, 2, 2.0)
        net.add_edge(2, 3, 2.0)
        return net

    def test_zero_cap_trips_on_first_augmentation(self):
        from repro.flow import FlowBudgetError

        with pytest.raises(FlowBudgetError) as exc:
            max_flow(self._two_path_net(), 0, 3, max_augmentations=0)
        assert exc.value.limit == 0
        assert exc.value.augmentations == 1
        assert exc.value.phases >= 1

    def test_generous_cap_is_exact(self):
        assert max_flow(
            self._two_path_net(), 0, 3, max_augmentations=1000
        ) == pytest.approx(3.0)

    def test_budget_tallies_augmentations(self):
        from repro.resilience import Budget

        budget = Budget()
        max_flow(self._two_path_net(), 0, 3, budget=budget)
        assert budget.flow_augmentations_spent >= 1

    def test_shared_budget_cap_flows_into_max_augmentations(self):
        # The P-SD integration: remaining_augmentations() feeds the cap.
        from repro.flow import FlowBudgetError
        from repro.resilience import Budget

        budget = Budget(max_flow_augmentations=1)
        net = self._two_path_net()
        with pytest.raises(FlowBudgetError):
            max_flow(net, 0, 3, budget=budget,
                     max_augmentations=budget.remaining_augmentations())
        assert budget.remaining_augmentations() == 0

    def test_metrics_flushed_even_when_interrupted(self):
        from repro.flow import FlowBudgetError
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        with pytest.raises(FlowBudgetError):
            max_flow(self._two_path_net(), 0, 3, metrics=registry,
                     max_augmentations=0)
        assert registry.total("repro_maxflow_phases_total") >= 1
