"""Unit and property tests for MBRs and the optimal MBR dominance test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.mbr import MBR, mbr_dominates

# Coordinates snap to a coarse grid: the dominance test and the sampled
# oracle use different tolerance conventions, and sub-epsilon boxes would
# produce spurious disagreements right at the boundary.
_grid = lambda x: round(x * 4) / 4  # noqa: E731
boxes = st.builds(
    lambda lo, size: MBR(
        np.asarray([_grid(c) for c in lo]),
        np.asarray([_grid(c) + _grid(s) for c, s in zip(lo, size)]),
    ),
    st.lists(st.floats(-20, 20), min_size=2, max_size=2),
    st.lists(st.floats(0, 10), min_size=2, max_size=2),
)


class TestMBRBasics:
    def test_of_points(self):
        box = MBR.of_points([[0, 5], [2, 1], [1, 3]])
        assert np.allclose(box.lo, [0, 1])
        assert np.allclose(box.hi, [2, 5])

    def test_invalid_corners_raise(self):
        with pytest.raises(ValueError, match="invalid MBR"):
            MBR(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MBR(np.array([0.0]), np.array([0.0, 1.0]))

    def test_volume_and_margin(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 3.0]))
        assert box.volume() == pytest.approx(6.0)
        assert box.margin == pytest.approx(5.0)

    def test_center(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 4.0]))
        assert np.allclose(box.center, [1.0, 2.0])

    def test_union_contains_both(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        u = a.union(b)
        assert u.contains(a) and u.contains(b)

    def test_enlargement_zero_when_contained(self):
        a = MBR(np.array([0.0, 0.0]), np.array([4.0, 4.0]))
        b = MBR(np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        assert a.enlargement(b) == pytest.approx(0.0)
        assert b.enlargement(a) > 0

    def test_intersects(self):
        a = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = MBR(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        c = MBR(np.array([5.0, 5.0]), np.array([6.0, 6.0]))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)
        # Touching boxes intersect (closed boxes).
        d = MBR(np.array([2.0, 0.0]), np.array([3.0, 2.0]))
        assert a.intersects(d)

    def test_contains_point(self):
        box = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        assert box.contains_point([0.5, 0.5])
        assert box.contains_point([1.0, 1.0])  # boundary
        assert not box.contains_point([1.1, 0.5])


class TestDistances:
    def test_mindist_inside_is_zero(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        assert box.mindist([1.0, 1.0]) == 0.0

    def test_mindist_outside(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        assert box.mindist([5.0, 2.0]) == pytest.approx(3.0)
        assert box.mindist([5.0, 6.0]) == pytest.approx(5.0)

    def test_maxdist(self):
        box = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        assert box.maxdist([0.0, 0.0]) == pytest.approx(np.sqrt(8.0))
        assert box.maxdist([1.0, 1.0]) == pytest.approx(np.sqrt(2.0))

    @given(boxes, st.lists(st.floats(-30, 30), min_size=2, max_size=2))
    @settings(max_examples=60)
    def test_min_le_max_and_sampled_bounds(self, box, point):
        point = np.asarray(point)
        lo, hi = box.mindist(point), box.maxdist(point)
        assert lo <= hi + 1e-9
        # Sample points inside the box; their distances must lie in [lo, hi].
        rng = np.random.default_rng(0)
        samples = rng.uniform(box.lo, box.hi + 1e-12, size=(40, 2))
        dists = np.linalg.norm(samples - point, axis=1)
        assert np.all(dists >= lo - 1e-6)
        assert np.all(dists <= hi + 1e-6)

    @given(boxes, boxes)
    @settings(max_examples=60)
    def test_box_box_distances_bound_samples(self, a, b):
        rng = np.random.default_rng(1)
        sa = rng.uniform(a.lo, a.hi + 1e-12, size=(25, 2))
        sb = rng.uniform(b.lo, b.hi + 1e-12, size=(25, 2))
        dists = np.linalg.norm(sa[:, None] - sb[None, :], axis=2)
        assert np.all(dists >= a.mindist_mbr(b) - 1e-6)
        assert np.all(dists <= a.maxdist_mbr(b) + 1e-6)

    def test_mindist_mbr_overlapping_is_zero(self):
        a = MBR(np.array([0.0, 0.0]), np.array([2.0, 2.0]))
        b = MBR(np.array([1.0, 1.0]), np.array([3.0, 3.0]))
        assert a.mindist_mbr(b) == 0.0


class TestMBRDominates:
    """The Emrich et al. O(d) test against a sampled ground truth."""

    @staticmethod
    def _sampled_dominates(u: MBR, v: MBR, q: MBR, n: int = 12) -> bool:
        """maxdist(p, u) <= mindist(p, v) for sampled p in q (necessary)."""
        grid = [np.linspace(q.lo[i], q.hi[i], n) for i in range(q.dim)]
        mesh = np.stack(np.meshgrid(*grid), axis=-1).reshape(-1, q.dim)
        return all(u.maxdist(p) <= v.mindist(p) + 1e-9 for p in mesh)

    def test_clear_dominance(self):
        q = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        u = MBR(np.array([2.0, 0.0]), np.array([3.0, 1.0]))
        v = MBR(np.array([50.0, 0.0]), np.array([51.0, 1.0]))
        assert mbr_dominates(u, v, q)
        assert not mbr_dominates(v, u, q)

    def test_no_dominance_when_overlapping(self):
        q = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        u = MBR(np.array([2.0, 0.0]), np.array([4.0, 1.0]))
        v = MBR(np.array([3.0, 0.0]), np.array([5.0, 1.0]))
        assert not mbr_dominates(u, v, q)

    def test_identical_points_non_strict_vs_strict(self):
        q = MBR(np.array([0.0]), np.array([0.0]))
        u = MBR(np.array([5.0]), np.array([5.0]))
        v = MBR(np.array([5.0]), np.array([5.0]))
        assert mbr_dominates(u, v, q)
        assert not mbr_dominates(u, v, q, strict=True)

    def test_dim_mismatch_raises(self):
        a = MBR(np.array([0.0]), np.array([1.0]))
        b = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            mbr_dominates(a, b, a)

    @given(boxes, boxes, boxes)
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_dense_sampling(self, u, v, q):
        fast = mbr_dominates(u, v, q)
        sampled = self._sampled_dominates(u, v, q)
        if fast:
            # Exact test positive => must hold at all sampled query points.
            assert sampled
        else:
            # The exact test is optimal: if it says no, a witness exists.
            # Dense sampling may still miss the witness on a coarse grid, so
            # only assert when sampling also finds the violation is false:
            # recompute with the analytic corner criterion instead.
            total = 0.0
            for i in range(q.dim):
                best = -np.inf
                for qi in (q.lo[i], q.hi[i]):
                    hi_u = max((qi - u.lo[i]) ** 2, (qi - u.hi[i]) ** 2)
                    if qi < v.lo[i]:
                        lo_v = (v.lo[i] - qi) ** 2
                    elif qi > v.hi[i]:
                        lo_v = (qi - v.hi[i]) ** 2
                    else:
                        lo_v = 0.0
                    best = max(best, hi_u - lo_v)
                total += best
            assert total > 0  # a genuine violation direction exists
