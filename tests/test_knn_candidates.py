"""Tests for k-NN candidates (the k-skyband generalisation of Algorithm 1)."""

import numpy as np
import pytest

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.core.nnc import NNCSearch, nn_candidates
from repro.objects.uncertain import UncertainObject

from .conftest import random_scene

BRUTES = {
    "SSD": brute_s_dominates,
    "SSSD": brute_ss_dominates,
    "PSD": brute_p_dominates,
    "FSD": brute_f_dominates,
}


def brute_force_knnc(objects, query, dominates, k):
    """Objects dominated by fewer than k others (definition)."""
    out = []
    for v in objects:
        count = sum(1 for u in objects if u is not v and dominates(u, v, query))
        if count < k:
            out.append(v.oid)
    return sorted(out)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    @pytest.mark.parametrize("k", [1, 2, 3, 7])
    def test_random_scene(self, kind, k):
        rng = np.random.default_rng(k * 17)
        objects, query = random_scene(rng, n_objects=22, m=4, m_q=3)
        got = sorted(nn_candidates(objects, query, kind, k=k).oids())
        want = brute_force_knnc(objects, query, BRUTES[kind], k)
        assert got == want

    def test_ties(self, rng):
        objects = [
            UncertainObject(
                rng.integers(0, 6, size=(3, 2)).astype(float), oid=i
            )
            for i in range(15)
        ]
        query = UncertainObject(
            rng.integers(0, 6, size=(2, 2)).astype(float), oid="Q"
        )
        for k in (1, 2, 4):
            got = sorted(nn_candidates(objects, query, "SSD", k=k).oids())
            want = brute_force_knnc(objects, query, brute_s_dominates, k)
            assert got == want, k


class TestSkybandStructure:
    def test_monotone_in_k(self, rng):
        objects, query = random_scene(rng, n_objects=20, m=3, m_q=2)
        search = NNCSearch(objects)
        previous: set = set()
        for k in (1, 2, 3, 4):
            current = set(search.run(query, "SSD", k=k).oids())
            assert previous <= current
            previous = current

    def test_k_at_least_population_returns_all(self, rng):
        objects, query = random_scene(rng, n_objects=10, m=3, m_q=2)
        result = nn_candidates(objects, query, "SSD", k=len(objects))
        assert sorted(result.oids()) == sorted(o.oid for o in objects)

    def test_k1_equals_nnc(self, rng):
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        search = NNCSearch(objects)
        assert sorted(search.run(query, "PSD").oids()) == sorted(
            search.run(query, "PSD", k=1).oids()
        )

    def test_invalid_k(self, rng):
        objects, query = random_scene(rng, n_objects=3, m=2, m_q=2)
        with pytest.raises(ValueError):
            nn_candidates(objects, query, "SSD", k=0)

    def test_topk_covers_topk_function_winners(self, rng):
        """The k best objects under any N1 function are k-NN candidates."""
        from repro.functions.n1 import expected_distance, max_distance

        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        k = 3
        skyband = set(nn_candidates(objects, query, "SSD", k=k).oids())
        for fn in (expected_distance, max_distance):
            ranked = sorted(objects, key=lambda o: fn(o, query))[:k]
            for obj in ranked:
                assert obj.oid in skyband, fn.__name__

    def test_stream_topk(self, rng):
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        search = NNCSearch(objects)
        streamed = [o.oid for o in search.stream(query, "SSD", k=2)]
        batch = search.run(query, "SSD", k=2).oids()
        assert streamed == batch
