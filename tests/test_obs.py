"""Tests for the observability layer (``repro.obs``).

Covers the tracer (nesting, ring buffer, counter deltas, null object), the
metrics registry (instruments, exports, counter-bag bridging), the trace and
metrics exporters, the search-pipeline instrumentation (span tree shape,
Prometheus reconciliation with ``Counters.snapshot()``), and the CLI
``--trace/--metrics/--breakdown`` surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.nnc import NNCSearch
from repro.experiments.report import trace_breakdown, trace_breakdown_table
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    NullTracer,
    Tracer,
    chrome_trace,
    query_metrics_from_counters,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)
from tests.conftest import random_scene


class TestTracer:
    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].depth == 0 and spans["outer"].parent is None
        assert spans["inner"].depth == 1 and spans["inner"].parent == "outer"
        assert spans["leaf"].depth == 2 and spans["leaf"].parent == "inner"
        assert spans["sibling"].depth == 1 and spans["sibling"].parent == "outer"
        # Completion order: children close before their parents.
        names = [s.name for s in tracer.spans()]
        assert names == ["leaf", "inner", "sibling", "outer"]

    def test_durations_and_start_monotonic(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.spans()
        assert a.duration >= 0.0 and b.duration >= 0.0
        assert b.start >= a.start

    def test_labels_recorded(self):
        tracer = Tracer()
        with tracer.span("check", oid=7, op="PSD"):
            pass
        (span,) = tracer.spans()
        assert span.labels == {"oid": 7, "op": "PSD"}

    def test_counter_deltas(self):
        tracer = Tracer()
        counters = Counters()
        counters.dominance_checks = 5
        with tracer.span("check", counters=counters):
            counters.dominance_checks += 3
            counters.count_comparisons(10)
        (span,) = tracer.spans()
        assert span.counter_deltas == {
            "dominance_checks": 3,
            "instance_comparisons": 10,
        }

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.completed == 5
        assert tracer.dropped == 2
        assert [s.name for s in tracer] == ["s2", "s3", "s4"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0 and tracer.completed == 0 and tracer.dropped == 0

    def test_feeds_span_seconds_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
        with tracer.span("maxflow", op="PSD"):
            pass
        with tracer.span("rtree-descent"):
            pass
        hist = registry.get(
            "repro_span_seconds", {"span": "maxflow", "operator": "PSD"}
        )
        assert hist is not None and hist.count == 1
        assert registry.get("repro_span_seconds", {"span": "rtree-descent"}).count == 1

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert null.enabled is False
        with null.span("anything", counters=Counters(), op="SSD") as span:
            pass
        assert null.spans() == []
        assert len(null) == 0 and null.dropped == 0
        assert list(null) == []
        assert NULL_TRACER.enabled is False

    def test_span_record_to_dict(self):
        tracer = Tracer()
        counters = Counters()
        with tracer.span("check", counters=counters, oid=3):
            counters.mbr_tests += 1
        d = tracer.spans()[0].to_dict()
        assert d["name"] == "check"
        assert d["labels"] == {"oid": 3}
        assert d["counters"] == {"mbr_tests": 1}
        assert "parent" not in d  # root span omits the key


class TestTraceBufferOverflow:
    """A saturated span buffer degrades loudly and exports cleanly."""

    def _overflowed(self, capacity=4, spans=11, registry=None):
        tracer = Tracer(capacity=capacity, metrics=registry)
        for i in range(spans):
            with tracer.span(f"s{i}", idx=i):
                pass
        return tracer

    def test_drop_counter_exported_to_prometheus(self):
        registry = MetricsRegistry()
        tracer = self._overflowed(registry=registry)
        assert tracer.dropped == 7
        assert registry.value("repro_trace_spans_dropped_total") == 7
        text = registry.to_prometheus()
        assert "# TYPE repro_trace_spans_dropped_total counter" in text
        assert "repro_trace_spans_dropped_total 7" in text

    def test_no_drops_means_no_counter_traffic(self):
        registry = MetricsRegistry()
        tracer = Tracer(capacity=8, metrics=registry)
        with tracer.span("only"):
            pass
        assert registry.get("repro_trace_spans_dropped_total") is None

    def test_truncated_chrome_export_stays_well_formed(self):
        tracer = self._overflowed()
        doc = chrome_trace(tracer.spans())
        json.loads(json.dumps(doc))  # round-trips as strict JSON
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # Newest-capacity survivors, every event structurally complete.
        assert [e["name"] for e in spans] == ["s7", "s8", "s9", "s10"]
        for event in spans:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_truncated_merged_trace_stays_well_formed(self):
        from repro.obs import merged_chrome_trace

        root = self._overflowed(capacity=2, spans=5)
        shard = self._overflowed(capacity=3, spans=9)
        doc = merged_chrome_trace(
            root.spans(), [(0, shard.spans())], trace_id="t" * 32
        )
        json.loads(json.dumps(doc))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 5  # 2 surviving root + 3 surviving shard spans
        assert {e["tid"] for e in spans} == {0, 1}

    def test_jsonl_export_of_truncated_buffer(self, tmp_path):
        tracer = self._overflowed()
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.spans())
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("hits_total", 2, {"op": "SSD"})
        reg.inc("hits_total", 3, {"op": "SSD"})
        reg.inc("hits_total", 1, {"op": "PSD"})
        assert reg.value("hits_total", {"op": "SSD"}) == 5
        assert reg.total("hits_total") == 6
        reg.set_gauge("depth", 4)
        assert reg.value("depth") == 4
        reg.observe("latency", 0.2)
        reg.observe("latency", 3.0)
        hist = reg.get("latency")
        assert hist.count == 2 and hist.sum == pytest.approx(3.2)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("x_total", -1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.inc("thing", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.observe("thing", 0.5)

    def test_label_order_insensitive(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1, {"a": "1", "b": "2"})
        reg.inc("x_total", 1, {"b": "2", "a": "1"})
        assert reg.value("x_total", {"a": "1", "b": "2"}) == 2

    def test_histogram_cumulative_buckets(self):
        from repro.obs.metrics import Histogram

        hist = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            hist.observe(v)
        assert hist.cumulative() == [1, 2, 3]
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_queries_total", {"operator": "PSD"},
                    help="queries run").inc(2)
        reg.observe("repro_query_seconds", 0.05, {"operator": "PSD"},
                    buckets=(0.01, 0.1, 1.0))
        text = reg.to_prometheus()
        assert "# HELP repro_queries_total queries run" in text
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{operator="PSD"} 2' in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_query_seconds_bucket{operator="PSD",le="0.01"} 0' in text
        assert 'repro_query_seconds_bucket{operator="PSD",le="0.1"} 1' in text
        assert 'repro_query_seconds_bucket{operator="PSD",le="+Inf"} 1' in text
        assert 'repro_query_seconds_sum{operator="PSD"} 0.05' in text
        assert 'repro_query_seconds_count{operator="PSD"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 1, {"k": 'a"b\\c'})
        assert r'x_total{k="a\"b\\c"} 1' in reg.to_prometheus()

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.inc("x_total", 3, {"op": "SSD"})
        reg.observe("y_seconds", 0.2, buckets=(1.0,))
        dump = json.loads(json.dumps(reg.to_json()))
        assert dump["metrics"]["x_total"]["type"] == "counter"
        (series,) = dump["metrics"]["x_total"]["series"]
        assert series == {"labels": {"op": "SSD"}, "value": 3}
        (hist,) = dump["metrics"]["y_seconds"]["series"]
        assert hist["count"] == 1 and hist["buckets"] == {"1": 1}

    def test_query_metrics_from_counters_reconciles(self):
        reg = MetricsRegistry()
        deltas = {
            "dominance_checks": 7,
            "mbr_tests": 4,
            "pruned_by_statistics": 2,
            "pruned_by_cover": 1,
            "validated_by_mbr": 3,
            "nodes_visited": 0,  # zero deltas are skipped
        }
        query_metrics_from_counters(
            reg, deltas, operator="SSD", elapsed=0.01, candidates=5
        )
        assert reg.value("repro_queries_total", {"operator": "SSD"}) == 1
        for key, value in deltas.items():
            got = reg.value(
                "repro_counter_total", {"counter": key, "operator": "SSD"}
            )
            assert got == value or (value == 0 and got == 0)
        total = sum(v for v in deltas.values())
        assert reg.total("repro_counter_total") == total
        assert reg.value(
            "repro_prune_hits_total", {"rule": "statistics", "operator": "SSD"}
        ) == 2
        assert reg.value(
            "repro_prune_hits_total", {"rule": "cover", "operator": "SSD"}
        ) == 1
        assert reg.value(
            "repro_validate_hits_total", {"rule": "mbr", "operator": "SSD"}
        ) == 3
        assert reg.get("repro_query_seconds", {"operator": "SSD"}).count == 1
        assert reg.get("repro_candidates", {"operator": "SSD"}).count == 1


class TestExport:
    def _sample_tracer(self) -> Tracer:
        tracer = Tracer()
        counters = Counters()
        with tracer.span("search", op="PSD", k=2):
            with tracer.span("dominance-check", counters=counters, oid=1):
                counters.dominance_checks += 2
        return tracer

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._sample_tracer().spans())
        assert doc["displayTimeUnit"] == "ms"
        meta, *events = doc["traceEvents"]
        assert meta["ph"] == "M" and meta["args"]["name"] == "repro"
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"search", "dominance-check"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
        assert by_name["dominance-check"]["cat"] == "search"
        assert by_name["dominance-check"]["args"]["counters"] == {
            "dominance_checks": 2
        }
        assert by_name["search"]["args"] == {"op": "PSD", "k": 2}
        json.dumps(doc)  # must be serialisable as-is

    def test_chrome_trace_nesting_timestamps(self):
        doc = chrome_trace(self._sample_tracer().spans())
        events = {e["name"]: e for e in doc["traceEvents"][1:]}
        outer, inner = events["search"], events["dominance-check"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_spans_to_jsonl(self):
        text = spans_to_jsonl(self._sample_tracer().spans())
        lines = text.strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "dominance-check"
        assert first["parent"] == "search"
        assert first["counters"] == {"dominance_checks": 2}
        assert spans_to_jsonl([]) == ""

    def test_write_trace_suffix_dispatch(self, tmp_path):
        tracer = self._sample_tracer()
        chrome_path = write_trace(tmp_path / "t.json", tracer)
        doc = json.loads(chrome_path.read_text())
        assert "traceEvents" in doc
        jsonl_path = write_trace(tmp_path / "t.jsonl", tracer)
        assert all(
            json.loads(line) for line in jsonl_path.read_text().splitlines()
        )
        forced = write_trace(tmp_path / "t.log", tracer, format="jsonl")
        assert json.loads(forced.read_text().splitlines()[0])["name"]
        with pytest.raises(ValueError):
            write_trace(tmp_path / "t.bin", tracer, format="protobuf")

    def test_write_metrics_suffix_dispatch(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("x_total", 1)
        prom = write_metrics(tmp_path / "m.prom", reg)
        assert "# TYPE x_total counter" in prom.read_text()
        js = write_metrics(tmp_path / "m.json", reg)
        assert json.loads(js.read_text())["metrics"]["x_total"]["type"] == "counter"


class TestPipelineInstrumentation:
    """Traced searches: span-tree shape and metric reconciliation."""

    OPERATORS = ["SSD", "SSSD", "PSD", "FSD", "F+SD"]

    def _traced_run(self, kind, rng, **ctx_kwargs):
        objects, query = random_scene(rng, n_objects=25, m=4)
        tracer = Tracer()
        registry = MetricsRegistry()
        ctx = QueryContext(query, tracer=tracer, metrics=registry, **ctx_kwargs)
        result = NNCSearch(objects).run(query, kind, ctx=ctx, k=2)
        return result, tracer, registry, ctx

    def test_span_tree_covers_the_pipeline(self, rng):
        result, tracer, _, _ = self._traced_run("PSD", rng)
        names = {s.name for s in tracer.spans()}
        assert {"search", "rtree-descent", "entry-prune",
                "dominance-check"} <= names
        # P-SD exercises the max-flow machinery on this workload.
        assert "maxflow" in names or "level-flow" in names
        roots = [s for s in tracer.spans() if s.depth == 0]
        assert [s.name for s in roots] == ["search"]
        (root,) = roots
        assert root.labels["op"] == "PSD"
        assert root.labels["k"] == 2
        # Every non-root span nests under the search root.
        for span in tracer.spans():
            if span.depth == 1:
                assert span.parent == "search"

    @pytest.mark.parametrize("kind,inner", [
        ("SSD", "cdf-scan"),
        ("SSSD", "cdf-sweep"),
        ("FSD", "hull-extremes"),
    ])
    def test_operator_specific_spans(self, kind, inner, rng):
        _, tracer, _, _ = self._traced_run(kind, rng)
        spans = tracer.spans()
        inner_spans = [s for s in spans if s.name == inner]
        assert inner_spans, f"{kind} produced no {inner!r} span"
        assert all(s.parent == "dominance-check" for s in inner_spans)
        assert all(s.labels["op"] == kind for s in inner_spans)

    def test_root_counter_deltas_match_context(self, rng):
        _, tracer, _, ctx = self._traced_run("SSD", rng)
        root = next(s for s in tracer.spans() if s.name == "search")
        snap = ctx.counters.snapshot()
        for key, value in root.counter_deltas.items():
            assert snap[key] == value
        # Every non-zero counter of the query shows up on the root span.
        for key, value in snap.items():
            if value:
                assert root.counter_deltas.get(key) == value

    @pytest.mark.parametrize("kind", OPERATORS)
    def test_prometheus_reconciles_with_snapshot(self, kind, rng):
        _, _, registry, ctx = self._traced_run(kind, rng)
        snap = ctx.counters.snapshot()
        for key, value in snap.items():
            if not value:
                continue
            assert registry.value(
                "repro_counter_total", {"counter": key, "operator": kind}
            ) == value, key
        assert registry.total("repro_counter_total") == sum(snap.values())
        assert registry.value("repro_queries_total", {"operator": kind}) == 1
        # And the same numbers survive the text export.
        text = registry.to_prometheus()
        assert f'repro_queries_total{{operator="{kind}"}} 1' in text

    def test_kernel_batch_histograms(self, rng):
        _, _, registry, ctx = self._traced_run("SSD", rng, kernels=True)
        fams = registry.families()
        assert "repro_kernel_batch_elements" in fams
        observed = sum(
            m.count for _, m in fams["repro_kernel_batch_elements"]
        )
        assert observed == ctx.counters.kernel_invocations
        elements = sum(m.sum for _, m in fams["repro_kernel_batch_elements"])
        assert elements == ctx.counters.kernel_elements

    def test_rtree_visit_metrics(self, rng):
        # Best-first traversals report node pops when a registry is attached
        # (used by F-SD's per-vertex extreme-distance queries on local trees).
        from repro.index.rtree import RTree

        from repro.geometry.mbr import MBR

        registry = MetricsRegistry()
        tree = RTree()
        for i, point in enumerate(rng.uniform(0, 100, size=(64, 2))):
            tree.insert(MBR(point, point), i)
        tree.metrics = registry
        tree.metrics_label = "local"
        q = np.array([50.0, 50.0])
        tree.nearest_distance(q)
        tree.farthest_distance(q)
        tree.nearest(q, k=3)
        for mode in ("nearest", "farthest", "best-first"):
            assert registry.value(
                "repro_rtree_node_visits_total",
                {"tree": "local", "mode": mode},
            ) > 0

    def test_fsd_local_trees_feed_rtree_metrics(self, rng):
        # With use_local_trees (the paper's level setup) the per-pair
        # extreme-distance queries run on the objects' local R-trees and
        # report through the context's registry.
        from repro.core.fsd import fsd_dominates
        from tests.conftest import random_object

        registry = MetricsRegistry()
        u = random_object(rng, m=16, oid=0)
        v = random_object(rng, m=16, oid=1)
        query = random_object(rng, m=4, oid="Q")
        ctx = QueryContext(query, metrics=registry)
        fsd_dominates(u, v, ctx, use_local_trees=True)
        assert registry.total("repro_rtree_node_visits_total") > 0

    def test_maxflow_metrics(self, rng):
        _, _, registry, ctx = self._traced_run("PSD", rng)
        if ctx.counters.maxflow_calls:
            assert registry.total("repro_maxflow_phases_total") > 0
            assert registry.total("repro_maxflow_augmentations_total") >= 0

    def test_metrics_without_tracer(self, rng):
        objects, query = random_scene(rng, n_objects=15)
        registry = MetricsRegistry()
        ctx = QueryContext(query, metrics=registry)
        assert ctx.tracer.enabled is False
        NNCSearch(objects).run(query, "SSD", ctx=ctx)
        assert registry.value("repro_queries_total", {"operator": "SSD"}) == 1
        assert registry.total("repro_counter_total") == sum(
            ctx.counters.snapshot().values()
        )

    def test_default_context_has_null_tracer(self, rng):
        objects, query = random_scene(rng, n_objects=10)
        ctx = QueryContext(query)
        assert ctx.tracer is NULL_TRACER
        assert ctx.metrics is None
        NNCSearch(objects).run(query, "SSD", ctx=ctx)  # must not record anything
        assert len(NULL_TRACER) == 0

    def test_traced_and_untraced_results_agree(self, rng):
        objects, query = random_scene(rng, n_objects=30, m=4)
        search = NNCSearch(objects)
        for kind in self.OPERATORS:
            plain = search.run(query, kind, ctx=QueryContext(query), k=2)
            traced = search.run(
                query, kind,
                ctx=QueryContext(query, tracer=Tracer(),
                                 metrics=MetricsRegistry()),
                k=2,
            )
            assert sorted(plain.oids()) == sorted(traced.oids())


class TestServeMetricFamilies:
    """The PR-4 serving families export correctly from the shared registry."""

    def _served_registry(self):
        from repro.obs.metrics import MetricsRegistry as Registry
        from repro.serve.cache import ResultCache
        from repro.serve.server import ServeApp
        from repro.serve.updates import DatasetManager
        from repro.datasets import synthetic

        gen = np.random.default_rng(4)
        centers = synthetic.independent_centers(25, 2, gen)
        objects = synthetic.make_objects(centers, 3, 30.0, gen)
        registry = Registry()
        app = ServeApp(
            DatasetManager(objects, shards=2, metrics=registry),
            cache=ResultCache(8, metrics=registry),
            registry=registry,
        )
        body = {"points": [[50.0, 50.0]], "operator": "FSD"}
        # Admission happens in the transport loop; mirror it here so the
        # inflight gauge materializes.
        app.try_acquire()
        app.dispatch("POST", "/query", body)
        app.release()
        app.dispatch("POST", "/query", body)       # cache hit
        app.dispatch("POST", "/insert", {"points": [[1.0, 2.0]], "oid": "x"})
        app.dispatch("POST", "/delete", {"oid": "x"})
        app.dispatch("POST", "/query", {"bad": True})  # 400
        app.manager.close()
        return registry

    def test_prometheus_export_has_all_families(self):
        text = self._served_registry().to_prometheus()
        for family in (
            "repro_serve_requests_total",
            "repro_serve_request_seconds",
            "repro_serve_inflight",
            "repro_serve_shard_fanout",
            "repro_serve_cache_hits_total",
            "repro_serve_cache_misses_total",
            "repro_serve_cache_size",
            "repro_serve_updates_total",
            "repro_serve_epoch",
            "repro_serve_objects",
            "repro_queries_total",
        ):
            assert family in text, f"{family} missing"
        assert 'repro_serve_requests_total{route="/query",status="200"} 2' in text
        assert 'repro_serve_requests_total{route="/query",status="400"} 1' in text
        assert 'repro_serve_updates_total{op="insert"} 1' in text
        assert 'repro_serve_updates_total{op="delete"} 1' in text

    def test_json_export_reconciles(self):
        registry = self._served_registry()
        dump = registry.to_json()["metrics"]
        assert dump["repro_serve_cache_hits_total"]["type"] == "counter"
        assert registry.value("repro_serve_cache_hits_total") == 1.0
        assert registry.value("repro_serve_epoch") == 2.0
        assert registry.value("repro_serve_objects") == 25.0
        fanout = registry.get("repro_serve_shard_fanout", {"operator": "FSD"})
        assert fanout is not None and fanout.count == 1

    def test_registry_is_thread_safe_under_concurrent_writes(self):
        import threading

        registry = MetricsRegistry()
        errors = []

        def pound(tag):
            try:
                for i in range(300):
                    registry.inc("x_total", 1, {"t": tag})
                    registry.observe("y_seconds", 0.001 * i, {"t": tag})
                    registry.set_gauge("z", i)
                    registry.families()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=pound, args=(str(j),)) for j in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors[0]
        assert registry.total("x_total") == 1200
        assert sum(
            registry.get("y_seconds", {"t": str(j)}).count for j in range(4)
        ) == 1200


class TestBreakdown:
    def test_trace_breakdown_rows(self, rng):
        objects, query = random_scene(rng, n_objects=25)
        tracer = Tracer()
        ctx = QueryContext(query, tracer=tracer)
        NNCSearch(objects).run(query, "SSD", ctx=ctx, k=2)
        rows = trace_breakdown(tracer.spans())
        by_span = {(r["span"], r["operator"]): r for r in rows}
        assert ("search", "-") in by_span or any(
            r["span"] == "search" for r in rows
        )
        checks = [r for r in rows if r["span"] == "dominance-check"]
        assert checks and checks[0]["calls"] >= 1
        for row in rows:
            assert row["total_ms"] >= 0
            assert row["mean_ms"] == pytest.approx(
                row["total_ms"] / row["calls"]
            )
            if row["dominance_checks"]:
                assert row["cmp_per_check"] == pytest.approx(
                    row["comparisons"] / row["dominance_checks"]
                )
        # Sorted by total time, descending.
        totals = [r["total_ms"] for r in rows]
        assert totals == sorted(totals, reverse=True)

    def test_trace_breakdown_table_renders(self, rng):
        objects, query = random_scene(rng, n_objects=15)
        tracer = Tracer()
        NNCSearch(objects).run(
            query, "SSSD", ctx=QueryContext(query, tracer=tracer)
        )
        text = trace_breakdown_table(tracer.spans())
        assert "Span breakdown" in text
        assert "cdf-sweep" in text


class TestCLI:
    def test_search_trace_metrics_breakdown(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        rc = cli_main([
            "search", "--n", "60", "--m", "5", "--k", "2",
            "--operator", "PSD", "--quiet", "--seed", "3",
            "--trace", str(trace_path),
            "--metrics", str(metrics_path),
            "--breakdown",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Span breakdown" in out
        assert "trace:" in out and "metrics ->" in out
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"search", "rtree-descent", "dominance-check"} <= names
        text = metrics_path.read_text()
        assert 'repro_queries_total{operator="PSD"} 1' in text
        assert "repro_span_seconds_bucket" in text

    def test_search_trace_jsonl_and_metrics_json(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        rc = cli_main([
            "search", "--n", "40", "--m", "4", "--operator", "SSD",
            "--quiet", "--trace", str(trace_path),
            "--metrics", str(metrics_path),
        ])
        assert rc == 0
        events = [json.loads(l) for l in trace_path.read_text().splitlines()]
        assert any(e["name"] == "search" for e in events)
        dump = json.loads(metrics_path.read_text())
        assert "repro_counter_total" in dump["metrics"]

    def test_search_without_obs_flags_unchanged(self, capsys):
        rc = cli_main([
            "search", "--n", "30", "--m", "4", "--operator", "SSD", "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace:" not in out and "metrics ->" not in out
