"""Tests for S-SD / SS-SD internals: filters and bounding distributions."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_s_dominates, brute_ss_dominates
from repro.core.context import QueryContext
from repro.core.ssd import bounding_distributions, s_dominates
from repro.core.sssd import bounding_distributions_per_q, ss_dominates
from repro.stats.stochastic import stochastic_leq

from .conftest import random_object, random_scene


class TestBoundingDistributions:
    def test_bounds_bracket_exact(self, rng):
        obj = random_object(rng, m=15, oid="U")
        query = random_object(rng, m=4, oid="Q")
        ctx = QueryContext(query)
        lo, hi = bounding_distributions(obj, ctx)
        exact = ctx.distance_distribution(obj)
        assert stochastic_leq(lo, exact)
        assert stochastic_leq(exact, hi)

    def test_bounds_total_mass(self, rng):
        obj = random_object(rng, m=10, oid="U")
        query = random_object(rng, m=3, oid="Q")
        ctx = QueryContext(query)
        lo, hi = bounding_distributions(obj, ctx)
        assert lo.total_mass == pytest.approx(1.0)
        assert hi.total_mass == pytest.approx(1.0)

    def test_per_q_bounds_bracket_exact(self, rng):
        obj = random_object(rng, m=12, oid="U")
        query = random_object(rng, m=3, oid="Q")
        ctx = QueryContext(query)
        bounds = bounding_distributions_per_q(obj, ctx)
        exact = ctx.per_instance_distributions(obj)
        assert len(bounds) == len(query)
        for (lo, hi), ex in zip(bounds, exact):
            assert stochastic_leq(lo, ex)
            assert stochastic_leq(ex, hi)


class TestStatisticPruning:
    def test_statistic_violation_prunes(self, rng):
        """When min(U_Q) > min(V_Q) the check must fail fast."""
        objects, query = random_scene(rng, n_objects=12, m=4, m_q=3)
        ctx = QueryContext(query)
        for u in objects:
            for v in objects:
                if u is v:
                    continue
                u_min, u_mean, u_max = ctx.statistics(u)
                v_min, v_mean, v_max = ctx.statistics(v)
                violated = (
                    u_min > v_min + 1e-9
                    or u_mean > v_mean + 1e-9
                    or u_max > v_max + 1e-9
                )
                if violated:
                    assert not s_dominates(u, v, ctx)
                    assert not brute_s_dominates(u, v, query)

    def test_counters_track_pruning(self, rng):
        objects, query = random_scene(rng, n_objects=10, m=4, m_q=3)
        ctx = QueryContext(query)
        for u in objects[:5]:
            for v in objects[5:]:
                s_dominates(u, v, ctx)
        snap = ctx.counters.snapshot()
        assert snap["dominance_checks"] == 25
        assert snap["pruned_by_statistics"] + snap["validated_by_mbr"] >= 0


class TestCoverRules:
    @pytest.mark.parametrize("seed", range(3))
    def test_not_s_implies_not_ss(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=10, m=3, m_q=3)
        for u in objects:
            for v in objects:
                if u is v:
                    continue
                if not brute_s_dominates(u, v, query):
                    assert not brute_ss_dominates(u, v, query)

    def test_ss_with_and_without_cover_pruning_agree(self, rng):
        objects, query = random_scene(rng, n_objects=10, m=4, m_q=3)
        ctx = QueryContext(query)
        for u in objects[:5]:
            for v in objects[5:]:
                a = ss_dominates(u, v, ctx, use_cover_pruning=True)
                b = ss_dominates(u, v, ctx, use_cover_pruning=False)
                assert a == b


class TestLevelFilter:
    @pytest.mark.parametrize("seed", range(3))
    def test_level_agrees_with_exact(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=8, m=12, m_q=3)
        ctx = QueryContext(query)
        for u in objects[:4]:
            for v in objects[4:]:
                assert s_dominates(u, v, ctx, use_level=True) == brute_s_dominates(
                    u, v, query
                )
                assert ss_dominates(
                    u, v, ctx, use_level=True
                ) == brute_ss_dominates(u, v, query)

    def test_level_validation_or_prune_fire(self, rng):
        """On well-separated objects the level filter should decide pairs."""
        objects, query = random_scene(rng, n_objects=14, m=12, m_q=2, spread=0.5)
        ctx = QueryContext(query, level_groups=4)
        for u in objects:
            for v in objects:
                if u is not v:
                    s_dominates(u, v, ctx, use_level=True)
        decided = (
            ctx.counters.pruned_by_level
            + ctx.counters.validated_by_level
            + ctx.counters.pruned_by_statistics
            + ctx.counters.validated_by_mbr
        )
        assert decided > 0
