"""Tests for the stochastic order, match order, and Theorem 1/11 properties."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import (
    build_match,
    match_order_leq,
    stochastic_equal,
    stochastic_leq,
)

from .conftest import distributions


def _cdf_leq_bruteforce(x, y) -> bool:
    """Definition 1 checked at every support point of both distributions."""
    points = np.union1d(x.values, y.values)
    return all(x.cdf(t) >= y.cdf(t) - 1e-9 for t in points)


class TestStochasticLeq:
    def test_simple_cases(self):
        a = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        b = DiscreteDistribution([3.0, 4.0], [0.5, 0.5])
        assert stochastic_leq(a, b)
        assert not stochastic_leq(b, a)

    def test_reflexive(self):
        a = DiscreteDistribution([1.0, 5.0], [0.3, 0.7])
        assert stochastic_leq(a, a)

    def test_crossing_cdfs_incomparable(self):
        a = DiscreteDistribution([1.0, 10.0], [0.5, 0.5])
        b = DiscreteDistribution([2.0, 3.0], [0.5, 0.5])
        assert not stochastic_leq(a, b)
        assert not stochastic_leq(b, a)

    def test_ties_handled(self):
        a = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        b = DiscreteDistribution([1.0, 2.0], [0.4, 0.6])
        assert stochastic_leq(a, b)  # a has more mass at the low value
        assert not stochastic_leq(b, a)

    def test_unequal_masses_rejected(self):
        a = DiscreteDistribution([1.0], [0.5])
        b = DiscreteDistribution([2.0], [1.0])
        assert not stochastic_leq(a, b)

    @given(distributions(), distributions())
    @settings(max_examples=150)
    def test_matches_definition(self, x, y):
        assert stochastic_leq(x, y) == _cdf_leq_bruteforce(x, y)

    @given(distributions(), distributions(), distributions())
    @settings(max_examples=80)
    def test_transitive(self, x, y, z):
        if stochastic_leq(x, y) and stochastic_leq(y, z):
            assert stochastic_leq(x, z)

    @given(distributions())
    @settings(max_examples=50)
    def test_shift_dominates(self, x):
        shifted = DiscreteDistribution(x.values + 1.0, x.probs)
        assert stochastic_leq(x, shifted)
        assert not stochastic_leq(shifted, x)

    def test_counter_instrumentation(self):
        class Sink:
            total = 0

            def count_comparisons(self, n):
                self.total += n

        sink = Sink()
        a = DiscreteDistribution([1.0, 2.0, 3.0])
        b = DiscreteDistribution([4.0, 5.0, 6.0])
        stochastic_leq(a, b, counter=sink)
        assert sink.total > 0


class TestStochasticEqual:
    def test_equal(self):
        a = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        b = DiscreteDistribution([2.0, 1.0], [0.5, 0.5])
        assert stochastic_equal(a, b)

    def test_not_equal(self):
        a = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        b = DiscreteDistribution([1.0, 2.0], [0.6, 0.4])
        assert not stochastic_equal(a, b)

    @given(distributions(), distributions())
    @settings(max_examples=80)
    def test_antisymmetry(self, x, y):
        """<=_st both ways iff distributionally equal (Theorem 10's lemma)."""
        both = stochastic_leq(x, y) and stochastic_leq(y, x)
        assert both == stochastic_equal(x, y)


class TestMatchOrder:
    """Theorem 1: the match order and the stochastic order coincide."""

    @given(distributions(), distributions())
    @settings(max_examples=100)
    def test_equivalence(self, x, y):
        assert match_order_leq(x, y) == stochastic_leq(x, y)

    @given(distributions(), distributions())
    @settings(max_examples=100)
    def test_build_match_is_valid_witness(self, x, y):
        if not stochastic_leq(x, y):
            with pytest.raises(ValueError):
                build_match(x, y)
            return
        match = build_match(x, y)
        # Every tuple pairs a smaller-or-equal x value.
        for xv, yv, p in match:
            assert xv <= yv + 1e-9
            assert p > 0
        # Marginals reproduce both distributions.
        for val, prob in zip(x.values, x.probs):
            got = sum(p for xv, _, p in match if abs(xv - val) < 1e-12)
            assert got == pytest.approx(prob, abs=1e-6)
        for val, prob in zip(y.values, y.probs):
            got = sum(p for _, yv, p in match if abs(yv - val) < 1e-12)
            assert got == pytest.approx(prob, abs=1e-6)

    def test_match_splits_atoms(self):
        x = DiscreteDistribution([1.0], [1.0])
        y = DiscreteDistribution([2.0, 3.0], [0.5, 0.5])
        match = build_match(x, y)
        assert len(match) == 2
        assert sum(p for _, _, p in match) == pytest.approx(1.0)


class TestTheorem11:
    """X <=_st Y implies min/mean/max/quantile ordering (stability)."""

    @given(distributions(), distributions())
    @settings(max_examples=120)
    def test_statistics_ordered(self, x, y):
        if not stochastic_leq(x, y):
            return
        assert x.min() <= y.min() + 1e-9
        assert x.mean() <= y.mean() + 1e-9
        assert x.max() <= y.max() + 1e-9
        for phi in (0.25, 0.5, 0.75, 1.0):
            assert x.quantile(phi) <= y.quantile(phi) + 1e-9


class TestVectorisedPath:
    """The counter-free vectorised path must agree with the scan exactly."""

    class _Sink:
        def count_comparisons(self, n):
            pass

    @given(distributions(), distributions())
    @settings(max_examples=150)
    def test_agrees_with_scan(self, x, y):
        scan = stochastic_leq(x, y, counter=self._Sink())
        fast = stochastic_leq(x, y)
        assert scan == fast

    def test_tie_convention(self):
        x = DiscreteDistribution([1.0 + 5e-13], [1.0])
        y = DiscreteDistribution([1.0], [1.0])
        assert stochastic_leq(x, y) == stochastic_leq(
            x, y, counter=self._Sink()
        )
