"""Unit tests for repro.geometry.distance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.distance import (
    chebyshev,
    euclidean,
    manhattan,
    pairwise_distances,
    resolve_metric,
    squared_euclidean,
)


class TestMetrics:
    def test_euclidean_345(self):
        assert euclidean([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_squared_euclidean(self):
        assert squared_euclidean([0, 0], [3, 4]) == pytest.approx(25.0)

    def test_manhattan(self):
        assert manhattan([1, 2], [4, -2]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert chebyshev([1, 2], [4, -2]) == pytest.approx(4.0)

    def test_zero_distance(self):
        for metric in (euclidean, manhattan, chebyshev, squared_euclidean):
            assert metric([1.5, -2.5], [1.5, -2.5]) == 0.0

    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=3),
        st.lists(st.floats(-100, 100), min_size=3, max_size=3),
    )
    def test_symmetry(self, u, v):
        for metric in (euclidean, manhattan, chebyshev):
            assert metric(u, v) == pytest.approx(metric(v, u))

    @given(
        st.lists(st.floats(-50, 50), min_size=2, max_size=2),
        st.lists(st.floats(-50, 50), min_size=2, max_size=2),
        st.lists(st.floats(-50, 50), min_size=2, max_size=2),
    )
    def test_triangle_inequality(self, u, v, w):
        for metric in (euclidean, manhattan, chebyshev):
            assert metric(u, w) <= metric(u, v) + metric(v, w) + 1e-9

    def test_metric_ordering(self):
        # chebyshev <= euclidean <= manhattan for any pair.
        u, v = np.array([0.0, 0.0, 0.0]), np.array([1.0, 2.0, 3.0])
        assert chebyshev(u, v) <= euclidean(u, v) <= manhattan(u, v)


class TestResolveMetric:
    def test_by_name(self):
        assert resolve_metric("euclidean") is euclidean
        assert resolve_metric("L2") is euclidean
        assert resolve_metric("manhattan") is manhattan
        assert resolve_metric("LINF") is chebyshev

    def test_passthrough_callable(self):
        fn = lambda a, b: 0.0  # noqa: E731
        assert resolve_metric(fn) is fn

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            resolve_metric("cosine")


class TestPairwiseDistances:
    def test_shape(self, rng):
        xs = rng.uniform(size=(4, 3))
        ys = rng.uniform(size=(6, 3))
        assert pairwise_distances(xs, ys).shape == (4, 6)

    def test_values_match_scalar_metric(self, rng):
        xs = rng.uniform(size=(3, 2))
        ys = rng.uniform(size=(5, 2))
        out = pairwise_distances(xs, ys)
        for i in range(3):
            for j in range(5):
                assert out[i, j] == pytest.approx(euclidean(xs[i], ys[j]))

    def test_manhattan_vectorised(self, rng):
        xs = rng.uniform(size=(3, 4))
        ys = rng.uniform(size=(2, 4))
        out = pairwise_distances(xs, ys, metric="manhattan")
        for i in range(3):
            for j in range(2):
                assert out[i, j] == pytest.approx(manhattan(xs[i], ys[j]))

    def test_chebyshev_vectorised(self, rng):
        xs = rng.uniform(size=(3, 4))
        ys = rng.uniform(size=(2, 4))
        out = pairwise_distances(xs, ys, metric="chebyshev")
        for i in range(3):
            for j in range(2):
                assert out[i, j] == pytest.approx(chebyshev(xs[i], ys[j]))

    def test_custom_callable_loop(self, rng):
        xs = rng.uniform(size=(2, 2))
        ys = rng.uniform(size=(3, 2))
        out = pairwise_distances(xs, ys, metric=squared_euclidean)
        expected = pairwise_distances(xs, ys) ** 2
        assert np.allclose(out, expected)

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimensionality mismatch"):
            pairwise_distances(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_single_points_promoted(self):
        out = pairwise_distances(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(5.0)
