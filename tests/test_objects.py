"""Tests for UncertainObject and distance distributions (Section 2.1)."""

import numpy as np
import pytest

from repro.objects.uncertain import UncertainObject, normalize_objects


class TestConstruction:
    def test_basic(self):
        obj = UncertainObject([[0.0, 0.0], [1.0, 1.0]], [0.4, 0.6], oid="A")
        assert len(obj) == 2
        assert obj.dim == 2
        assert obj.oid == "A"

    def test_uniform_probs_default(self):
        obj = UncertainObject([[0.0], [1.0], [2.0], [3.0]])
        assert np.allclose(obj.probs, 0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            UncertainObject(np.empty((0, 2)))

    def test_probs_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            UncertainObject([[0.0], [1.0]], [1.0])

    def test_negative_prob_raises(self):
        with pytest.raises(ValueError):
            UncertainObject([[0.0], [1.0]], [1.5, -0.5])

    def test_unnormalized_rejected_without_flag(self):
        with pytest.raises(ValueError, match="normalize=True"):
            UncertainObject([[0.0], [1.0]], [2.0, 2.0])

    def test_multivalued_normalization(self):
        obj = UncertainObject([[0.0], [1.0]], [2.0, 6.0], normalize=True)
        assert np.allclose(obj.probs, [0.25, 0.75])

    def test_single_point_promoted_to_2d(self):
        obj = UncertainObject([5.0, 3.0])
        assert obj.points.shape == (1, 2)


class TestMBRAndTree:
    def test_mbr_caches(self):
        obj = UncertainObject([[0.0, 2.0], [4.0, 0.0]])
        assert obj.mbr is obj.mbr
        assert np.allclose(obj.mbr.lo, [0.0, 0.0])
        assert np.allclose(obj.mbr.hi, [4.0, 2.0])

    def test_local_rtree_holds_all_instances(self, rng):
        pts = rng.uniform(size=(17, 3))
        obj = UncertainObject(pts)
        tree = obj.local_rtree()
        assert len(tree) == 17
        payload_idx = sorted(i for _, (i, _) in tree.all_entries())
        assert payload_idx == list(range(17))

    def test_local_rtree_payload_probs(self):
        obj = UncertainObject([[0.0], [1.0]], [0.3, 0.7])
        entries = dict(
            (i, p) for _, (i, p) in obj.local_rtree().all_entries()
        )
        assert entries[0] == pytest.approx(0.3)
        assert entries[1] == pytest.approx(0.7)


class TestDistanceDistributions:
    def test_example_1_from_paper(self):
        """Example 1: A_Q = {(5,.25),(8,.25),(10,.25),(23,.25)}."""
        # 1-d layout realising the paper's distances: q1=0, q2=15,
        # a1=5 (d 5,10), a2=-8 (d 8,23).
        query = UncertainObject([[0.0], [15.0]], oid="Q")
        a = UncertainObject([[5.0], [-8.0]], oid="A")
        dist = a.distance_distribution(query)
        assert list(dist.values) == [5.0, 8.0, 10.0, 23.0]
        assert np.allclose(dist.probs, 0.25)
        # A_{q1} = {(5, .5), (8, .5)}
        aq1 = a.distance_distribution_to_point(np.array([0.0]))
        assert list(aq1.values) == [5.0, 8.0]
        assert np.allclose(aq1.probs, 0.5)

    def test_product_probabilities(self):
        query = UncertainObject([[0.0]], [1.0])
        obj = UncertainObject([[1.0], [2.0]], [0.3, 0.7])
        dist = obj.distance_distribution(query)
        assert dist.cdf(1.0) == pytest.approx(0.3)
        assert dist.total_mass == pytest.approx(1.0)

    def test_min_max_distance(self, rng):
        query = UncertainObject(rng.uniform(size=(3, 2)))
        obj = UncertainObject(rng.uniform(size=(4, 2)))
        dist = obj.distance_distribution(query)
        assert obj.min_distance(query) == pytest.approx(dist.min())
        assert obj.max_distance(query) == pytest.approx(dist.max())

    def test_point_distribution_scaled_mass(self):
        obj = UncertainObject([[1.0], [2.0]])
        d = obj.distance_distribution_to_point(np.array([0.0]), q_prob=0.5)
        assert d.total_mass == pytest.approx(0.5)


class TestNormalizeObjects:
    def test_normalizes_all(self):
        raw = UncertainObject([[0.0], [1.0]], [3.0, 1.0], normalize=True)
        # Rebuild an unnormalised-looking object through the helper.
        out = normalize_objects([raw])
        assert np.allclose(out[0].probs.sum(), 1.0)
        assert out[0].oid == raw.oid

    def test_preserves_points(self, rng):
        obj = UncertainObject(rng.uniform(size=(5, 2)))
        out = normalize_objects([obj])[0]
        assert np.allclose(out.points, obj.points)
