"""Smoke tests: the runnable examples must execute and claim success.

The slowest examples (NBA, check-ins, progressive) are exercised indirectly
through the experiment tests; the four fast ones run end to end here.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(name: str, capsys, entrypoints: tuple[str, ...] = ("main",)) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = spec.name
    try:
        spec.loader.exec_module(module)
        for entry in entrypoints:
            getattr(module, entry)()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "NN candidates per spatial dominance operator" in out
        assert "MISSING!" not in out

    def test_choosing_an_operator(self, capsys):
        out = _run_example(
            "choosing_an_operator",
            capsys,
            entrypoints=("show_figure3", "show_figure4", "show_tradeoff"),
        )
        assert "NNC under SSD: ['A']" in out
        assert "NNC under PSD: ['A', 'B']" in out

    def test_topk_candidates(self, capsys):
        out = _run_example("topk_candidates", capsys)
        assert "covered: True" in out
        assert "covered: False" not in out

    def test_function_topk(self, capsys):
        out = _run_example("function_topk", capsys)
        assert "Pr(NN)" in out
        assert "objects scored exactly" in out
