"""Audit log, answer digests, and deterministic replay verification."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.datasets import synthetic
from repro.objects.io import save_objects
from repro.obs.metrics import MetricsRegistry
from repro.serve.audit import (
    AuditLog,
    answer_digest,
    load_audit,
    replay_audit,
)
from repro.serve.server import ServeApp
from repro.serve.updates import DatasetManager

QUERY_POINTS = [[4700.0, 5300.0], [5200.0, 5800.0]]


def _objects(n: int = 40, seed: int = 13):
    rng = np.random.default_rng(seed)
    centers = synthetic.anticorrelated_centers(n, 2, rng)
    return synthetic.make_objects(centers, 4, 2000.0, rng)


def _app(tmp_path, objects=None, **kwargs):
    registry = MetricsRegistry()
    manager = DatasetManager(
        list(objects if objects is not None else _objects()),
        shards=2,
        metrics=registry,
    )
    audit = AuditLog(tmp_path / "audit.jsonl", metrics=registry)
    app = ServeApp(manager, registry=registry, audit=audit, **kwargs)
    return app, audit


class TestAnswerDigest:
    def test_order_independent(self):
        a = [{"oid": 1, "dominators": 0}, {"oid": 2, "dominators": 3}]
        assert answer_digest(a) == answer_digest(list(reversed(a)))

    def test_sensitive_to_content(self):
        base = [{"oid": 1, "dominators": 0}]
        assert answer_digest(base) != answer_digest(
            [{"oid": 1, "dominators": 1}]
        )
        assert answer_digest(base) != answer_digest(
            [{"oid": 2, "dominators": 0}]
        )
        assert answer_digest(base) != answer_digest([])

    def test_stable_known_value(self):
        # Pinned so a digest-format change is an audit-compat break, not a
        # silent one.
        assert answer_digest([]) == answer_digest(iter(()))


class TestAuditLog:
    def test_append_counts_and_metrics(self, tmp_path):
        registry = MetricsRegistry()
        log = AuditLog(tmp_path / "a.jsonl", metrics=registry)
        try:
            assert log.append("query", {"x": 1}) == 0
            assert log.append("insert", {"y": 2}) == 1
            assert log.stats()["records"] == {"query": 1, "insert": 1}
        finally:
            log.close()
        records = load_audit(tmp_path / "a.jsonl")
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["kind"] == "query" and records[0]["x"] == 1
        assert all("ts" in r for r in records)
        assert (
            registry.value("repro_audit_records_total", {"kind": "query"}) == 1
        )

    def test_append_mode_extends_existing_log(self, tmp_path):
        path = tmp_path / "a.jsonl"
        first = AuditLog(path)
        first.append("query", {})
        first.close()
        second = AuditLog(path)
        second.append("query", {})
        second.close()
        assert len(load_audit(path)) == 2

    def test_fsync_always_survives_immediate_reread(self, tmp_path):
        path = tmp_path / "a.jsonl"
        log = AuditLog(path, fsync="always")
        try:
            log.append("query", {"x": 1})
            # Durable before close: the record is on disk already.
            assert len(load_audit(path)) == 1
        finally:
            log.close()

    def test_fsync_mode_validated(self, tmp_path):
        with pytest.raises(ValueError):
            AuditLog(tmp_path / "a.jsonl", fsync="eventually")

    def test_torn_tail_skipped_and_flagged(self, tmp_path):
        path = tmp_path / "a.jsonl"
        log = AuditLog(path)
        log.append("query", {"degraded": True, "epoch": 0})
        log.close()
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "query", "se')  # crashed mid-append
        records = load_audit(path)
        assert len(records) == 1
        assert records.torn_tail is not None
        assert records.torn_tail.kind == "audit"
        assert records.torn_tail.offset > 0

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text('{"bad\n{"kind": "query", "seq": 1, "epoch": 0}\n')
        with pytest.raises(ValueError):
            load_audit(path)


class TestServeAuditIntegration:
    def _query(self, app, payload=None):
        return app.handle(
            "POST",
            "/query",
            {"points": QUERY_POINTS, "operator": "FSD", **(payload or {})},
        )

    def test_queries_and_mutations_audited(self, tmp_path):
        app, audit = _app(tmp_path)
        try:
            status, body = self._query(app)
            assert status == 200
            app.handle(
                "POST",
                "/insert",
                {"points": [[1.0, 1.0]], "probs": [1.0], "oid": "new-1"},
            )
            app.handle("POST", "/delete", {"oid": "new-1"})
            self._query(app, {"budget": {"max_dominance_checks": 2}})
        finally:
            app.manager.close()
            audit.close()
        records = load_audit(audit.path)
        assert [r["kind"] for r in records] == [
            "query", "insert", "delete", "query",
        ]
        q0 = records[0]
        assert q0["epoch"] == 0 and q0["operator"] == "FSD"
        assert q0["digest"] == answer_digest(body["candidates"])
        assert q0["points"] == QUERY_POINTS
        assert records[1]["oid"] == "new-1" and records[1]["epoch"] == 1
        assert records[2]["epoch"] == 2
        assert records[3]["degraded"] is True

    def test_cached_hit_audited_with_same_digest(self, tmp_path):
        from repro.serve.cache import ResultCache

        app, audit = _app(tmp_path, cache=ResultCache(8))
        try:
            self._query(app, {"operator": "PSD", "k": 2})
            status, body = self._query(app, {"operator": "PSD", "k": 2})
            assert status == 200 and body["cached"] is True
        finally:
            app.manager.close()
            audit.close()
        records = load_audit(audit.path)
        assert [r["cached"] for r in records] == [False, True]
        assert records[0]["digest"] == records[1]["digest"]


class TestReplay:
    def _recorded_session(self, tmp_path, objects):
        """Serve a scripted mixed workload and return its audit records."""
        app, audit = _app(tmp_path, objects=objects)
        try:
            for op in ("FSD", "PSD", "SSD"):
                status, _ = app.handle(
                    "POST",
                    "/query",
                    {"points": QUERY_POINTS, "operator": op, "k": 2},
                )
                assert status == 200
            app.handle(
                "POST",
                "/insert",
                {
                    "points": [[4800.0, 5400.0], [5100.0, 5600.0]],
                    "probs": [0.5, 0.5],
                    "oid": "ins-1",
                },
            )
            app.handle(
                "POST", "/query", {"points": QUERY_POINTS, "operator": "FSD"}
            )
            app.handle("POST", "/delete", {"oid": "ins-1"})
            app.handle(
                "POST", "/query", {"points": QUERY_POINTS, "operator": "FSD"}
            )
            # One degraded and one budgeted-but-exact query: both skipped.
            app.handle(
                "POST",
                "/query",
                {
                    "points": QUERY_POINTS,
                    "operator": "FSD",
                    "budget": {"max_dominance_checks": 2},
                },
            )
            app.handle(
                "POST",
                "/query",
                {
                    "points": QUERY_POINTS,
                    "operator": "FSD",
                    "budget": {"deadline_ms": 60_000},
                },
            )
        finally:
            app.manager.close()
            audit.close()
        return load_audit(audit.path)

    def test_replay_verifies_untampered_log(self, tmp_path):
        objects = _objects()
        records = self._recorded_session(tmp_path, objects)
        report = replay_audit(records, objects)
        assert report.ok
        assert report.records == len(records)
        assert report.mutations_applied == 2
        assert report.replayed == 5 and report.verified == 5
        assert report.skipped_degraded == 1
        assert report.skipped_budgeted >= 1
        assert report.epoch_errors == 0 and report.mismatch_count == 0

    def test_replay_is_shard_layout_independent(self, tmp_path):
        # Pinned answers mean the digest must reproduce under any sharding.
        objects = _objects()
        records = self._recorded_session(tmp_path, objects)
        report = replay_audit(
            records, objects, shards=3, backend="thread", partitioner="centroid"
        )
        assert report.ok and report.verified == 5

    def test_tampered_digest_detected(self, tmp_path):
        objects = _objects()
        records = self._recorded_session(tmp_path, objects)
        tampered = [dict(r) for r in records]
        victim = next(
            r for r in tampered
            if r["kind"] == "query" and not r["degraded"] and not r["budgeted"]
        )
        victim["digest"] = "0" * 40
        report = replay_audit(tampered, objects)
        assert not report.ok
        assert report.mismatch_count == 1
        assert report.mismatches[0]["expected"] == "0" * 40
        assert report.mismatches[0]["seq"] == victim["seq"]

    def test_missing_mutation_is_epoch_error(self, tmp_path):
        objects = _objects()
        records = self._recorded_session(tmp_path, objects)
        truncated = [r for r in records if r["kind"] != "insert"]
        report = replay_audit(truncated, objects)
        assert not report.ok and report.epoch_errors >= 1


class TestReplayCli:
    def _saved(self, tmp_path):
        objects = _objects(n=24)
        dataset = tmp_path / "data.npz"
        save_objects(dataset, objects)
        records = TestReplay()._recorded_session(tmp_path, objects)
        return dataset, tmp_path / "audit.jsonl", records

    def test_exit_zero_and_json_report(self, tmp_path, capsys):
        dataset, audit_path, _ = self._saved(tmp_path)
        rc = cli.main(
            [
                "replay",
                str(audit_path),
                "--dataset",
                str(dataset),
                "--format",
                "json",
            ]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["verified"] == 5

    def test_exit_one_on_mismatch(self, tmp_path, capsys):
        dataset, audit_path, records = self._saved(tmp_path)
        tampered = [dict(r) for r in records]
        for r in tampered:
            if r["kind"] == "query" and not r["degraded"] and not r["budgeted"]:
                r["digest"] = "f" * 40
        with audit_path.open("w", encoding="utf-8") as fh:
            for r in tampered:
                fh.write(json.dumps(r) + "\n")
        rc = cli.main(["replay", str(audit_path), "--dataset", str(dataset)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "mismatch" in out

    def test_exit_two_on_load_errors(self, tmp_path, capsys):
        dataset, audit_path, _ = self._saved(tmp_path)
        assert (
            cli.main(
                ["replay", str(tmp_path / "no.jsonl"), "--dataset", str(dataset)]
            )
            == 2
        )
        assert (
            cli.main(
                ["replay", str(audit_path), "--dataset", str(tmp_path / "no.npz")]
            )
            == 2
        )
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert cli.main(["replay", str(bad), "--dataset", str(dataset)]) == 2
        capsys.readouterr()
