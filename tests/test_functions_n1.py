"""Tests for the N1 family and the stable aggregate property (Definition 8)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.functions.base import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    QuantileAggregate,
    WeightedSumAggregate,
    standard_aggregates,
)
from repro.functions.n1 import (
    MAX,
    MEAN,
    MEDIAN,
    MIN,
    expected_distance,
    max_distance,
    min_distance,
    n1_function,
    quantile_distance,
)
from repro.objects.uncertain import UncertainObject
from repro.stats.stochastic import stochastic_leq

from .conftest import distributions


class TestStability:
    """Every shipped aggregate must satisfy Definition 8."""

    @given(distributions(), distributions())
    @settings(max_examples=120)
    def test_stable_under_stochastic_order(self, x, y):
        if not stochastic_leq(x, y):
            return
        for agg in standard_aggregates():
            assert agg(x) <= agg(y) + 1e-9, agg.name

    @given(distributions(), distributions())
    @settings(max_examples=60)
    def test_weighted_sum_stable(self, x, y):
        if not stochastic_leq(x, y):
            return
        agg = WeightedSumAggregate(
            ((0.5, MinAggregate()), (0.25, MeanAggregate()), (0.25, MaxAggregate()))
        )
        assert agg(x) <= agg(y) + 1e-9


class TestAggregates:
    def test_names(self):
        assert MinAggregate().name == "min"
        assert QuantileAggregate(0.5).name == "quantile[0.5]"
        assert "wsum" in WeightedSumAggregate(((1.0, MinAggregate()),)).name

    def test_quantile_phi_validation(self):
        with pytest.raises(ValueError):
            QuantileAggregate(0.0)
        with pytest.raises(ValueError):
            QuantileAggregate(1.1)

    def test_weighted_sum_validation(self):
        with pytest.raises(ValueError):
            WeightedSumAggregate(())
        with pytest.raises(ValueError):
            WeightedSumAggregate(((-1.0, MinAggregate()),))


class TestN1Functions:
    @pytest.fixture
    def scene(self):
        query = UncertainObject([[0.0], [10.0]], oid="Q")
        obj = UncertainObject([[1.0], [4.0]], oid="A")
        return obj, query

    def test_min_max_mean(self, scene):
        obj, query = scene
        # Distances: |1-0|=1, |4-0|=4, |1-10|=9, |4-10|=6.
        assert min_distance(obj, query) == pytest.approx(1.0)
        assert max_distance(obj, query) == pytest.approx(9.0)
        assert expected_distance(obj, query) == pytest.approx((1 + 4 + 9 + 6) / 4)

    def test_quantile_distance(self, scene):
        obj, query = scene
        # Sorted distances: 1, 4, 6, 9 each with mass .25.
        assert quantile_distance(obj, query, 0.25) == pytest.approx(1.0)
        assert quantile_distance(obj, query, 0.5) == pytest.approx(4.0)
        assert quantile_distance(obj, query, 1.0) == pytest.approx(9.0)

    def test_prebuilt_instances(self, scene):
        obj, query = scene
        assert MIN(obj, query) == min_distance(obj, query)
        assert MAX(obj, query) == max_distance(obj, query)
        assert MEAN(obj, query) == expected_distance(obj, query)
        assert MEDIAN(obj, query) == quantile_distance(obj, query, 0.5)

    def test_factory_naming(self):
        fn = n1_function(QuantileAggregate(0.75))
        assert "quantile[0.75]" in fn.__name__
