"""Tests for the experiment harness, parameters and reporting."""

import numpy as np
import pytest

from repro.experiments.figures import (
    DATASET_NAMES,
    FIGURES,
    build_dataset,
    fig10_candidate_size,
    fig14_progressive,
    run_sweep,
)
from repro.experiments.harness import (
    candidate_quality,
    evaluate_workload,
    progressive_profile,
)
from repro.experiments.params import SCALES, ExperimentParams, Scale
from repro.experiments.report import format_table

from .conftest import random_scene

TEST_SCALE = Scale("test", n_factor=0.0006, m_factor=0.1, q_factor=0.1, n_queries=1)


class TestParams:
    def test_defaults_match_table2(self):
        p = ExperimentParams()
        assert (p.n, p.d, p.m_d, p.h_d, p.m_q, p.h_q) == (
            100_000,
            3,
            40,
            400.0,
            30,
            200.0,
        )
        assert p.distribution == "anti"

    def test_scaling(self):
        p = ExperimentParams().scaled(SCALES["tiny"])
        assert p.n < 1000
        assert p.m_d >= 2
        assert p.n_queries == SCALES["tiny"].n_queries
        # Density preservation inflates edges.
        assert p.h_d > 400.0

    def test_edge_factor_dimension_dependence(self):
        s = SCALES["small"]
        assert s.edge_factor(2) > s.edge_factor(3) > s.edge_factor(5)
        flat = Scale("flat", 0.01, 1, 1, 1, preserve_density=False)
        assert flat.edge_factor(3) == 1.0

    def test_with_(self):
        p = ExperimentParams().with_(m_d=99, distribution="indep")
        assert p.m_d == 99 and p.distribution == "indep"

    def test_generate_objects(self):
        p = ExperimentParams(n=30, m_d=4).with_(distribution="indep")
        objects = p.generate_objects()
        assert len(objects) == 30

    def test_unknown_distribution_raises(self):
        p = ExperimentParams().with_(distribution="zipf")
        with pytest.raises(ValueError):
            p.generate_centers(np.random.default_rng(0))


class TestBuildDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_datasets_buildable(self, name):
        params = ExperimentParams().scaled(TEST_SCALE)
        rng = np.random.default_rng(0)
        objects, queries = build_dataset(name, params, rng)
        assert len(objects) == params.n
        assert len(queries) == params.n_queries

    def test_unknown_dataset_raises(self):
        params = ExperimentParams().scaled(TEST_SCALE)
        with pytest.raises(ValueError):
            build_dataset("MARS", params, np.random.default_rng(0))


class TestHarness:
    def test_evaluate_workload(self, rng):
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        stats = evaluate_workload(objects, [query], kinds=("SSD", "F+SD"))
        assert set(stats) == {"SSD", "F+SD"}
        assert stats["SSD"].avg_candidates <= stats["F+SD"].avg_candidates
        assert stats["SSD"].avg_time > 0
        assert stats["SSD"].counters.dominance_checks > 0

    def test_progressive_profile(self, rng):
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        rows = progressive_profile(objects, query, "SSD")
        assert rows
        assert rows[-1]["progress"] == pytest.approx(1.0)
        assert all(r["quality"] >= 0 for r in rows)

    def test_candidate_quality_counts_dominated(self, rng):
        from repro.core.bruteforce import brute_s_dominates
        from repro.core.operators import make_operator

        objects, query = random_scene(rng, n_objects=10, m=3, m_q=2)
        op = make_operator("SSD")
        cand = objects[0]
        expected = sum(
            1
            for other in objects
            if other is not cand and brute_s_dominates(cand, other, query)
        )
        assert candidate_quality(objects, query, cand, op) == expected


class TestFigures:
    def test_fig10_tiny_structure(self):
        result = fig10_candidate_size(TEST_SCALE, datasets=("A-N", "E-N"))
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["SSD"] <= row["F+SD"] + 1e-9

    def test_sweep_structure(self):
        rows = run_sweep("d", TEST_SCALE, kinds=("SSD",), values=[2, 3])
        assert [r["d"] for r in rows] == [2, 3]
        assert all("size[SSD]" in r and "time[SSD]" in r for r in rows)

    def test_fig14_profile(self):
        result = fig14_progressive(TEST_SCALE)
        assert result.rows
        times = [r["time_s"] for r in result.rows]
        assert times == sorted(times)

    def test_registry_complete(self):
        expected = {
            "fig10", "fig11a", "fig11b", "fig11c", "fig11d", "fig11e",
            "fig11f", "fig12", "fig13a", "fig13b", "fig13c", "fig13d",
            "fig13e", "fig13f", "fig14", "fig16",
        }
        assert set(FIGURES) == expected


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, "demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_missing_cells(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "-" in text

    def test_empty(self):
        assert "(no rows)" in format_table([], "t")
