"""Continuous sampling profiler: attribution, idle filter, folded output.

Every test drives :meth:`SamplingProfiler.sample_once` by hand from the
test thread — the daemon loop calls exactly that method, so manual
sampling exercises the same code path with a deterministic sample count
instead of a wall-clock race.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.profile import (
    SamplingProfiler,
    flamegraph_svg,
    merge_folded,
    parse_folded,
)
from repro.obs.request import RequestContext, bind


class _BusyThread:
    """A thread spinning in a recognisably-named function."""

    def __init__(self, ctx: RequestContext | None = None) -> None:
        self._stop = threading.Event()
        self._ctx = ctx
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        if self._ctx is not None:
            with bind(self._ctx):
                self._spin_for_profiler()
        else:
            self._spin_for_profiler()

    def _spin_for_profiler(self) -> None:
        while not self._stop.is_set():
            sum(i * i for i in range(200))

    def stop(self) -> None:
        self._stop.set()
        self.thread.join(timeout=5.0)


def _sample_until(prof: SamplingProfiler, predicate, rounds: int = 2000):
    own = threading.get_ident()
    for _ in range(rounds):
        prof.sample_once(skip_thread=own)
        if predicate():
            return
    pytest.fail("predicate never satisfied while sampling")


class TestSampling:
    def test_busy_thread_lands_in_stacks(self):
        prof = SamplingProfiler(0.0)  # disabled loop; manual sampling works
        worker = _BusyThread()
        try:
            _sample_until(
                prof,
                lambda: any(
                    "_spin_for_profiler" in s for s in prof.stacks()
                ),
            )
        finally:
            worker.stop()
        stacks = prof.stacks()
        spin = [s for s in stacks if "_spin_for_profiler" in s]
        # Unbound thread: synthetic root is "runtime", frames root-first.
        assert all(s.startswith("runtime;") for s in spin)
        assert prof.samples > 0 and prof.ticks > 0

    def test_bound_thread_is_attributed_to_its_request(self):
        prof = SamplingProfiler(0.0)
        ctx = RequestContext.new(request_id="prof-req-1", sampled=True)
        worker = _BusyThread(ctx)
        try:
            _sample_until(prof, lambda: prof.attributed > 0)
        finally:
            worker.stop()
        stacks = prof.stacks()
        assert any(s.startswith("request;") for s in stacks)
        snap = prof.snapshot()
        entry = snap["requests"]["prof-req-1"]
        assert entry["samples"] >= 1
        assert entry["trace_id"] == ctx.trace_id

    def test_parked_thread_counts_idle_not_stack(self):
        prof = SamplingProfiler(0.0)
        gate = threading.Event()
        parked = threading.Thread(target=gate.wait, daemon=True)
        parked.start()
        try:
            _sample_until(prof, lambda: prof.idle > 0)
        finally:
            gate.set()
            parked.join(timeout=5.0)
        # The Event.wait leaf (threading:wait) never becomes a stack.
        assert not any("Event.wait" in s for s in prof.stacks())

    def test_skip_thread_excludes_the_sampler_itself(self):
        prof = SamplingProfiler(0.0)
        own = threading.get_ident()
        prof.sample_once(skip_thread=own)
        assert not any("sample_once" in s for s in prof.stacks())

    def test_disabled_profiler_never_starts_but_still_samples(self):
        prof = SamplingProfiler(0.0)
        assert not prof.enabled
        prof.start()
        assert not prof.running
        assert prof.sample_once() >= 1  # manual sampling still works
        prof.stop()  # idempotent no-op

    def test_start_stop_lifecycle(self):
        prof = SamplingProfiler(200.0)
        assert prof.enabled
        worker = _BusyThread()
        try:
            prof.start()
            assert prof.running
            deadline = threading.Event()
            for _ in range(100):
                if prof.ticks > 0:
                    break
                deadline.wait(0.02)
            prof.stop()
        finally:
            worker.stop()
        assert not prof.running
        assert prof.ticks > 0

    def test_registry_meters_ticks_and_samples(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        prof = SamplingProfiler(0.0, registry=registry)
        prof.sample_once()
        assert registry.value("repro_profile_ticks_total") == 1.0
        assert registry.value("repro_profile_samples_total") >= 1.0

    def test_snapshot_shape(self):
        prof = SamplingProfiler(0.0)
        prof.sample_once()
        snap = prof.snapshot(top=5)
        for key in (
            "enabled", "running", "hz", "ticks", "samples", "attributed",
            "idle", "distinct_stacks", "dropped_requests", "duration_s",
            "stacks", "folded", "requests",
        ):
            assert key in snap
        assert len(snap["stacks"]) <= 5

    def test_reset_drops_aggregates(self):
        prof = SamplingProfiler(0.0)
        prof.sample_once()
        prof.reset()
        assert prof.samples == 0 and prof.stacks() == {}


class TestFoldedPlumbing:
    def test_folded_parse_round_trip(self):
        prof = SamplingProfiler(0.0)
        worker = _BusyThread()
        try:
            _sample_until(prof, lambda: len(prof.stacks()) >= 1)
        finally:
            worker.stop()
        assert parse_folded(prof.folded()) == prof.stacks()

    def test_parse_folded_skips_garbage_lines(self):
        text = "a;b 3\n\nnot-a-count xx\na;b 2\nc 1\n"
        assert parse_folded(text) == {"a;b": 5, "c": 1}

    def test_merge_folded_is_additive(self):
        into = {"a;b": 2, "c": 1}
        merge_folded(into, {"a;b": 3, "d": 7})
        assert into == {"a;b": 5, "c": 1, "d": 7}


class TestFlamegraph:
    STACKS = {
        "runtime;mod:outer;mod:inner": 60,
        "runtime;mod:outer;mod:other": 30,
        "request;mod:handler": 10,
    }

    def test_svg_well_formed_with_titles(self):
        svg = flamegraph_svg(self.STACKS, title="test graph")
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert "test graph" in svg
        assert "mod:outer" in svg and "mod:inner" in svg
        # every frame rect (grouped <g>) carries a hover <title>
        assert svg.count("<g>") == svg.count("<title") > 0

    def test_svg_escapes_markup_in_frame_names(self):
        svg = flamegraph_svg({"runtime;mod:<genexpr>": 5})
        assert "<genexpr>" not in svg
        assert "&lt;genexpr&gt;" in svg

    def test_empty_profile_renders(self):
        svg = flamegraph_svg({})
        assert svg.startswith("<svg")
