"""Tests for the hypersphere baseline: Welzl miniball + sphere dominance."""

import numpy as np
import pytest

from repro.baselines.spheres import (
    Ball,
    bounding_ball,
    minimal_enclosing_ball,
    sphere_dominates,
    sphere_nn_candidates,
)
from repro.core.bruteforce import brute_f_dominates, brute_force_nnc
from repro.objects.uncertain import UncertainObject

from .conftest import random_scene


class TestMinimalEnclosingBall:
    def test_single_point(self):
        ball = minimal_enclosing_ball(np.array([[3.0, 4.0]]))
        assert np.allclose(ball.center, [3.0, 4.0])
        assert ball.radius == pytest.approx(0.0)

    def test_two_points(self):
        ball = minimal_enclosing_ball(np.array([[0.0, 0.0], [2.0, 0.0]]))
        assert np.allclose(ball.center, [1.0, 0.0])
        assert ball.radius == pytest.approx(1.0)

    def test_equilateral_triangle(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, np.sqrt(3.0)]])
        ball = minimal_enclosing_ball(pts)
        assert ball.radius == pytest.approx(2.0 / np.sqrt(3.0), abs=1e-6)

    def test_obtuse_triangle_diameter_ball(self):
        # For an obtuse triangle the MEB is the diametral ball of the
        # longest side.
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 0.5]])
        ball = minimal_enclosing_ball(pts)
        assert ball.radius == pytest.approx(5.0, abs=1e-6)
        assert np.allclose(ball.center, [5.0, 0.0], atol=1e-6)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("dim", [2, 3, 4])
    def test_contains_all_and_tight(self, seed, dim):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(int(rng.integers(2, 20)), dim))
        ball = minimal_enclosing_ball(pts)
        dists = np.linalg.norm(pts - ball.center, axis=1)
        assert np.all(dists <= ball.radius + 1e-6)
        # Tightness: some point is (numerically) on the boundary...
        assert dists.max() >= ball.radius - 1e-6
        # ...and the MEB radius is at most the centroid-ball radius.
        centroid = pts.mean(axis=0)
        assert ball.radius <= np.linalg.norm(pts - centroid, axis=1).max() + 1e-6

    def test_duplicated_points(self):
        pts = np.array([[1.0, 1.0]] * 5)
        ball = minimal_enclosing_ball(pts)
        assert ball.radius == pytest.approx(0.0, abs=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            minimal_enclosing_ball(np.empty((0, 2)))

    def test_deterministic_radius_across_seeds(self, rng):
        pts = rng.normal(size=(15, 3))
        r1 = minimal_enclosing_ball(pts, seed=0).radius
        r2 = minimal_enclosing_ball(pts, seed=99).radius
        assert r1 == pytest.approx(r2, abs=1e-9)


class TestSphereDominance:
    def test_clear_dominance(self):
        q = Ball(np.array([0.0, 0.0]), 1.0)
        u = Ball(np.array([3.0, 0.0]), 0.5)
        v = Ball(np.array([50.0, 0.0]), 0.5)
        assert sphere_dominates(u, v, q)
        assert not sphere_dominates(v, u, q)

    def test_identical_balls_never_dominate(self):
        q = Ball(np.array([0.0]), 0.0)
        u = Ball(np.array([5.0]), 1.0)
        assert not sphere_dominates(u, u, q)

    def test_soundness_implies_instance_dominance(self, rng):
        """Sphere dominance must imply brute-force F-SD."""
        objects, query = random_scene(rng, n_objects=16, m=3, m_q=2, spread=1.0)
        q_ball = bounding_ball(query)
        balls = [bounding_ball(o) for o in objects]
        hits = 0
        for i, u in enumerate(objects):
            for j, v in enumerate(objects):
                if i != j and sphere_dominates(balls[i], balls[j], q_ball):
                    hits += 1
                    assert brute_f_dominates(u, v, query)
        assert hits > 0


class TestSphereCandidates:
    def test_superset_of_fsd_candidates(self, rng):
        """The sound-but-loose sphere test keeps at least the F-SD set."""
        objects, query = random_scene(rng, n_objects=20, m=3, m_q=2)
        sphere_set = {o.oid for o in sphere_nn_candidates(objects, query)}
        fsd_set = {
            o.oid for o in brute_force_nnc(objects, query, brute_f_dominates)
        }
        assert fsd_set <= sphere_set

    def test_single_object(self):
        q = UncertainObject([[0.0]], oid="Q")
        only = UncertainObject([[1.0]], oid="X")
        assert sphere_nn_candidates([only], q) == [only]
