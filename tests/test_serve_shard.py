"""Sharded scatter-gather search: partitioners, backends, exactness pins.

The load-bearing guarantee: for any shard count, either partitioner, and
every operator, the scatter-gather answer equals the single-process
Algorithm 1 answer (candidate set and final dominator counts both).
DESIGN.md §13 gives the containment-chain argument; these tests pin it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.core.nnc import NNCSearch
from repro.core.operators import make_operator
from repro.datasets import synthetic
from repro.datasets.paper_examples import figure3
from repro.resilience.budget import Budget
from repro.serve.shard import (
    BACKENDS,
    PARTITIONERS,
    ShardedSearch,
    partition_centroid,
    partition_round_robin,
)

from .conftest import uncertain_objects

OPERATORS = ("SSD", "SSSD", "PSD", "FSD")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(11)
    centers = synthetic.anticorrelated_centers(120, 2, rng)
    objects = synthetic.make_objects(centers, 5, 120.0, rng)
    query = synthetic.make_query(centers[17], 4, 80.0, rng)
    return objects, query


@pytest.fixture(scope="module")
def monolith(workload):
    objects, _ = workload
    return NNCSearch(objects)


class TestPartitioners:
    def test_round_robin_covers_and_balances(self, workload):
        objects, _ = workload
        parts = partition_round_robin(objects, 4)
        assert sum(len(p) for p in parts) == len(objects)
        assert {id(o) for p in parts for o in p} == {id(o) for o in objects}
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_centroid_covers_with_no_empty_shards(self, workload):
        objects, _ = workload
        parts = partition_centroid(objects, 5)
        assert sum(len(p) for p in parts) == len(objects)
        assert {id(o) for p in parts for o in p} == {id(o) for o in objects}
        assert all(parts), "centroid partitioner left an empty shard"

    def test_centroid_is_deterministic(self, workload):
        objects, _ = workload
        a = partition_centroid(objects, 3)
        b = partition_centroid(objects, 3)
        assert [[o.oid for o in p] for p in a] == [
            [o.oid for o in p] for p in b
        ]

    def test_centroid_groups_spatially(self):
        # Two well-separated clusters must not be split across shards.
        rng = np.random.default_rng(5)
        left = synthetic.make_objects(
            rng.uniform(0, 10, size=(20, 2)), 3, 1.0, rng
        )
        right = synthetic.make_objects(
            rng.uniform(1000, 1010, size=(20, 2)), 3, 1.0, rng
        )
        parts = partition_centroid(left + right, 2)
        sides = [
            {(o.mbr.lo[0] < 500) for o in part} for part in parts
        ]
        assert all(len(s) == 1 for s in sides)

    def test_bad_args_rejected(self, workload):
        objects, _ = workload
        with pytest.raises(ValueError):
            partition_round_robin(objects, 0)
        with pytest.raises(ValueError):
            ShardedSearch(objects, partitioner="mod-hash")
        with pytest.raises(ValueError):
            ShardedSearch(objects, backend="gpu")


class TestExactness:
    """The acceptance-criterion pin: sharded == single-shard, bit for bit."""

    @pytest.mark.parametrize("operator", OPERATORS)
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_equal_to_monolith_synthetic(
        self, workload, monolith, operator, partitioner, shards
    ):
        objects, query = workload
        expected = monolith.run(query, operator)
        sharded = ShardedSearch(
            objects, shards=shards, partitioner=partitioner, backend="serial"
        )
        result = sharded.run(query, operator)
        sharded.close()
        assert sorted(result.oids()) == sorted(expected.oids())

    @pytest.mark.parametrize("operator", OPERATORS)
    def test_equal_on_paper_example(self, operator):
        scene = figure3()
        objects = [scene[name] for name in ("A", "B", "C")]
        query = scene.query
        expected = NNCSearch(objects).run(query, operator)
        sharded = ShardedSearch(objects, shards=3, backend="serial")
        result = sharded.run(query, operator)
        sharded.close()
        assert sorted(result.oids(), key=str) == sorted(
            expected.oids(), key=str
        )

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("partitioner", sorted(PARTITIONERS))
    def test_k_skyband_equal_and_counts_match_bruteforce(
        self, workload, monolith, k, partitioner
    ):
        objects, query = workload
        expected = monolith.run(query, "FSD", k=k)
        sharded = ShardedSearch(objects, shards=3, partitioner=partitioner)
        result = sharded.run(query, "FSD", k=k)
        sharded.close()
        assert sorted(result.oids()) == sorted(expected.oids())
        # Final counts are capped-exact: compare against the brute-force
        # dominator census over ALL objects, capped at k.
        operator = make_operator("FSD")
        from repro.core.context import QueryContext

        ctx = QueryContext(query)
        brute = {
            obj.oid: sum(
                1
                for other in objects
                if other is not obj and operator.dominates(other, obj, ctx)
            )
            for obj in result.candidates
        }
        for obj, count in zip(result.candidates, result.dominator_counts):
            # Every kept candidate truly belongs to the k-skyband, and the
            # refined count is a sound lower bound on the true census
            # (exact at the k threshold — that's the membership decision).
            assert brute[obj.oid] < k
            assert count <= brute[obj.oid]

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backends_agree(self, workload, monolith, backend):
        objects, query = workload
        expected = sorted(monolith.run(query, "PSD", k=2).oids())
        sharded = ShardedSearch(objects, shards=4, backend=backend)
        result = sharded.run(query, "PSD", k=2)
        sharded.close()
        assert result.backend == backend
        assert sorted(result.oids()) == expected

    def test_process_backend_agrees(self, workload, monolith):
        pytest.importorskip("multiprocessing")
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        objects, query = workload
        expected = sorted(monolith.run(query, "FSD").oids())
        sharded = ShardedSearch(objects, shards=2, backend="process")
        try:
            result = sharded.run(query, "FSD")
            # Candidates come back as parent-process objects, not copies.
            parent_ids = {id(o) for o in objects}
            assert all(id(c) in parent_ids for c in result.candidates)
            assert sorted(result.oids()) == expected
        finally:
            sharded.close()

    def test_seeds_prune_but_never_change_the_answer(self, workload):
        objects, query = workload
        mono = NNCSearch(objects)
        expected = mono.run(query, "FSD")
        # Seeding the full search with its own eventual answer must yield
        # the same candidates (seeds are dominators, never reported).
        seeded = mono.run(query, "FSD", seeds=list(expected.candidates))
        assert sorted(seeded.oids()) == sorted(expected.oids())


class TestServingBehaviour:
    def test_result_metadata(self, workload):
        objects, query = workload
        sharded = ShardedSearch(objects, shards=4, partitioner="centroid")
        result = sharded.run(query, "FSD")
        sharded.close()
        assert result.shards == 4
        assert result.backend in BACKENDS
        assert 1 <= result.fanout <= 4
        assert len(result.per_shard) == 4
        assert sum(row["objects"] for row in result.per_shard) == len(objects)
        assert result.exact and result.degradation is None
        assert result.counters.dominance_checks > 0

    def test_budget_degradation_propagates(self, workload):
        objects, query = workload
        sharded = ShardedSearch(objects, shards=2, backend="serial")
        result = sharded.run(
            query, "FSD", budget=Budget(max_dominance_checks=3)
        )
        sharded.close()
        assert result.degradation is not None
        assert not result.exact
        # Degraded = certified superset of the exact answer.
        exact = NNCSearch(objects).run(query, "FSD")
        assert set(exact.oids()) <= set(result.oids())

    def test_fanout_metric_lands_in_registry(self, workload):
        from repro.obs.metrics import MetricsRegistry

        objects, query = workload
        registry = MetricsRegistry()
        sharded = ShardedSearch(objects, shards=2, metrics=registry)
        sharded.run(query, "FSD")
        sharded.close()
        hist = registry.get(
            "repro_serve_shard_fanout", {"operator": "FSD"}
        )
        assert hist is not None and hist.count == 1
        assert registry.value(
            "repro_queries_total", {"operator": "FSD"}
        ) == 1.0

    def test_insert_and_mask_visible_to_queries(self, workload):
        objects, query = workload
        sharded = ShardedSearch(objects, shards=2)
        at_query = synthetic.make_query(
            query.mbr.center, 2, 0.5, np.random.default_rng(0), oid="close"
        )
        shard = sharded.insert(at_query)
        result = sharded.run(query, "FSD")
        assert "close" in result.oids()
        assert sharded.mask(shard, at_query)
        result2 = sharded.run(query, "FSD")
        assert "close" not in result2.oids()
        assert sharded.compact(0.0) == 1
        result3 = sharded.run(query, "FSD")
        sharded.close()
        assert sorted(result3.oids()) == sorted(result2.oids())


# ----------------------------------------------------------------------- #
# Property test (satellite): any K, both partitioners, all four operators
# ----------------------------------------------------------------------- #

shard_scenes = st.tuples(
    st.lists(
        uncertain_objects(max_instances=3, coord_range=8.0),
        min_size=2,
        max_size=8,
    ),
    uncertain_objects(max_instances=3, coord_range=8.0, uniform_probs=True),
    st.integers(min_value=1, max_value=5),
    st.sampled_from(sorted(PARTITIONERS)),
    st.sampled_from(OPERATORS),
    st.integers(min_value=1, max_value=3),
)


@given(shard_scenes)
@settings(max_examples=60, deadline=None)
def test_property_sharded_equals_single_process(scene):
    objects, query, shards, partitioner, operator, k = scene
    for i, obj in enumerate(objects):
        obj.oid = i
    expected = NNCSearch(objects).run(query, operator, k=k)
    sharded = ShardedSearch(
        objects, shards=shards, partitioner=partitioner, backend="serial"
    )
    result = sharded.run(query, operator, k=k)
    sharded.close()
    assert sorted(result.oids()) == sorted(expected.oids())
    # And both agree with the brute-force definition of the k-skyband
    # (dominator census over ALL objects, independent of Algorithm 1).
    brute_fn = {
        "SSD": brute_s_dominates,
        "SSSD": brute_ss_dominates,
        "PSD": brute_p_dominates,
        "FSD": brute_f_dominates,
    }[operator]
    brute_oids = sorted(
        v.oid
        for v in objects
        if sum(1 for u in objects if u is not v and brute_fn(u, v, query)) < k
    )
    assert sorted(result.oids()) == brute_oids
