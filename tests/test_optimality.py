"""Tests for the optimality theorems (5, 6, 7, 8): correctness + completeness.

Correctness: SD(U, V, Q) must imply f(U) <= f(V) for every function the
operator covers.  Completeness: when the dominance fails, some covered
function must prefer V (tested constructively where the proof is
constructive, via the paper's separating examples otherwise).
"""

import numpy as np
import pytest

from repro.core.bruteforce import (
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.functions import n1, n3
from repro.functions.base import standard_aggregates
from repro.functions.n2 import PossibleWorldScores
from repro.stats.stochastic import stochastic_leq

from .conftest import random_scene


def _scenes(n_scenes=4, **kwargs):
    for seed in range(n_scenes):
        rng = np.random.default_rng(1000 + seed)
        yield random_scene(rng, n_objects=8, m=3, m_q=2, spread=1.5, **kwargs)


class TestTheorem5SSD:
    """S-SD is optimal w.r.t. N1."""

    def test_correctness_for_all_n1(self):
        hits = 0
        for objects, query in _scenes():
            for u in objects:
                for v in objects:
                    if u is v or not brute_s_dominates(u, v, query):
                        continue
                    hits += 1
                    du = u.distance_distribution(query)
                    dv = v.distance_distribution(query)
                    for agg in standard_aggregates(
                        quantiles=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
                    ):
                        assert agg(du) <= agg(dv) + 1e-9, agg.name
        assert hits > 0

    def test_completeness_quantile_witness(self):
        """not S-SD(U,V) => some phi-quantile ranks V strictly better.

        The proof of Theorem 5 constructs the witness: pick a lambda where
        the CDFs cross and use phi = Pr(V_Q <= lambda).
        """
        checked = 0
        for objects, query in _scenes():
            for u in objects:
                for v in objects:
                    if u is v:
                        continue
                    du = u.distance_distribution(query)
                    dv = v.distance_distribution(query)
                    if stochastic_leq(du, dv) or stochastic_leq(dv, du):
                        continue  # need genuine incomparability (no f either way)
                    checked += 1
                    witness = False
                    for lam in np.union1d(du.values, dv.values):
                        phi = dv.cdf(lam)
                        if phi <= 0:
                            continue
                        if dv.quantile(phi) < du.quantile(phi) - 1e-9:
                            witness = True
                            break
                    assert witness, "no quantile separates an incomparable pair"
        assert checked > 0


class TestTheorem6SSSD:
    """SS-SD is optimal w.r.t. N1 ∪ N2."""

    def test_correctness_for_n2_scores(self):
        hits = 0
        for objects, query in _scenes():
            pw = PossibleWorldScores(objects, query)
            idx = {id(o): i for i, o in enumerate(objects)}
            for u in objects:
                for v in objects:
                    if u is v or not brute_ss_dominates(u, v, query):
                        continue
                    hits += 1
                    iu, iv = idx[id(u)], idx[id(v)]
                    assert pw.nn_probability(iu) >= pw.nn_probability(iv) - 1e-9
                    assert pw.expected_rank(iu) <= pw.expected_rank(iv) + 1e-9
                    for k in (1, 2, 3):
                        assert (
                            pw.topk_probability(iu, k)
                            >= pw.topk_probability(iv, k) - 1e-9
                        )
        assert hits > 0

    def test_not_covering_n3_witness(self):
        """Figure 4: SS-SD holds while EMD disagrees."""
        from repro.datasets.paper_examples import figure4

        scene = figure4()
        assert brute_ss_dominates(scene["A"], scene["B"], scene.query)
        assert n3.earth_movers_distance(
            scene["A"], scene.query
        ) > n3.earth_movers_distance(scene["B"], scene.query)

    def test_s_sd_not_covering_n2_witness(self):
        """Figure 3: S-SD holds while NN probability disagrees."""
        from repro.datasets.paper_examples import figure3

        scene = figure3()
        objects = scene.object_list()  # A, B, C
        assert brute_s_dominates(scene["A"], scene["C"], scene.query)
        pw = PossibleWorldScores(objects, scene.query)
        assert pw.nn_probability(2) > pw.nn_probability(0)


class TestTheorem7PSD:
    """P-SD is optimal w.r.t. N1 ∪ N2 ∪ N3."""

    def test_correctness_for_n3_functions(self):
        hits = 0
        for objects, query in _scenes():
            for u in objects:
                for v in objects:
                    if u is v or not brute_p_dominates(u, v, query):
                        continue
                    hits += 1
                    for fn in (
                        n3.hausdorff_distance,
                        n3.sum_of_min_distances,
                        n3.earth_movers_distance,
                    ):
                        assert fn(u, query) <= fn(v, query) + 1e-6, fn.__name__
        assert hits > 0

    def test_correctness_for_n1_functions(self):
        hits = 0
        for objects, query in _scenes():
            for u in objects:
                for v in objects:
                    if u is v or not brute_p_dominates(u, v, query):
                        continue
                    hits += 1
                    assert n1.min_distance(u, query) <= n1.min_distance(v, query) + 1e-9
                    assert n1.max_distance(u, query) <= n1.max_distance(v, query) + 1e-9
                    assert (
                        n1.expected_distance(u, query)
                        <= n1.expected_distance(v, query) + 1e-9
                    )
        assert hits > 0


class TestTheorem8FSDNotComplete:
    def test_fsd_redundant_candidate(self):
        """Figure 4: ¬F-SD(A,C) yet f(A) <= f(C) for every covered family —
        F-SD keeps C even though it can never win."""
        from repro.core.bruteforce import brute_f_dominates
        from repro.datasets.paper_examples import figure4

        scene = figure4()
        a, c, q = scene["A"], scene["C"], scene.query
        assert not brute_f_dominates(a, c, q)
        assert brute_p_dominates(a, c, q)  # P-SD proves C is redundant
        for fn in (
            n3.hausdorff_distance,
            n3.earth_movers_distance,
            n1.min_distance,
            n1.max_distance,
            n1.expected_distance,
        ):
            assert fn(a, q) <= fn(c, q) + 1e-6
