"""Tests for the function registry and the headline NNC guarantee.

The end-to-end promise of the paper: for every function in a family, its NN
object appears in the candidate set of the operator covering that family.
"""

import numpy as np
import pytest

from repro.core.nnc import nn_candidates
from repro.functions.registry import (
    FunctionFamily,
    default_function_suite,
    shared_possible_worlds,
)

from .conftest import random_scene


class TestSuiteStructure:
    def test_families_present(self):
        suite = default_function_suite()
        assert suite.family(FunctionFamily.N1)
        assert suite.family(FunctionFamily.N2)
        assert suite.family(FunctionFamily.N3)
        assert len(suite.family(FunctionFamily.N1, FunctionFamily.N2)) == len(
            suite.family(FunctionFamily.N1)
        ) + len(suite.family(FunctionFamily.N2))

    def test_custom_quantiles_and_topk(self):
        suite = default_function_suite(quantiles=(0.9,), topk=(3,))
        names = [f.name for f in suite]
        assert "quantile[0.9]" in names
        assert "global-top3" in names

    def test_iteration_and_len(self):
        suite = default_function_suite()
        assert len(list(suite)) == len(suite)


class TestSharedPossibleWorlds:
    def test_cache_hit(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=2, m_q=2)
        a = shared_possible_worlds(objects, query)
        b = shared_possible_worlds(objects, query)
        assert a is b

    def test_cache_distinguishes_queries(self, rng):
        objects, q1 = random_scene(rng, n_objects=4, m=2, m_q=2)
        _, q2 = random_scene(rng, n_objects=1, m=2, m_q=2)
        assert shared_possible_worlds(objects, q1) is not shared_possible_worlds(
            objects, q2
        )


class TestHeadlineGuarantee:
    """NN under any covered function is always an NNC candidate."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_nn_always_in_covering_candidate_set(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=12, m=3, m_q=3)
        suite = default_function_suite(quantiles=(0.25, 0.5, 0.75), topk=(1, 2))
        ssd = set(nn_candidates(objects, query, "SSD").oids())
        sssd = set(nn_candidates(objects, query, "SSSD").oids())
        psd = set(nn_candidates(objects, query, "PSD").oids())
        for fn in suite:
            winner = objects[fn.nearest(objects, query)].oid
            assert winner in psd, (fn.name, "PSD must cover all families")
            if fn.family in (FunctionFamily.N1, FunctionFamily.N2):
                assert winner in sssd, (fn.name, "SSSD must cover N1+N2")
            if fn.family is FunctionFamily.N1:
                assert winner in ssd, (fn.name, "SSD must cover N1")

    def test_nearest_tie_break_deterministic(self, rng):
        objects, query = random_scene(rng, n_objects=5, m=2, m_q=2)
        fn = default_function_suite().family(FunctionFamily.N1)[0]
        assert fn.nearest(objects, query) == fn.nearest(objects, query)
