"""Hypothesis property tests: each batch kernel equals its scalar twin.

Every vectorised kernel on the ``QueryContext(kernels=True)`` hot path must
be element-wise interchangeable (within ``1e-9``) with the scalar reference
it replaced — across all three named metrics and on degenerate inputs
(single instances, duplicated points, zero-width boxes).  The coarse value
grids below make exact ties common, exercising every tolerance convention.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels as K
from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.geometry.distance import resolve_norm
from repro.geometry.mbr import MBR, mbr_dominates
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_leq

from .conftest import probability_vectors, uncertain_objects

METRICS = ("euclidean", "manhattan", "chebyshev")

# Half-integer grid: duplicate coordinates and exact distance ties are common.
coords = st.floats(min_value=-8.0, max_value=8.0).map(lambda x: round(x * 2) / 2)


class _Counter:
    """Minimal comparison sink forcing the scalar scan in stochastic_leq."""

    def __init__(self) -> None:
        self.n = 0

    def count_comparisons(self, n: int) -> None:
        self.n += n


@st.composite
def point_arrays(draw, min_rows: int = 1, max_rows: int = 5, dim: int = 2):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    pts = draw(
        st.lists(
            st.lists(coords, min_size=dim, max_size=dim),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(pts, dtype=float)


@st.composite
def boxes(draw, max_boxes: int = 4, dim: int = 2):
    """Stacked (lo, hi) corner arrays; zero-width boxes are possible."""
    a = draw(point_arrays(min_rows=1, max_rows=max_boxes, dim=dim))
    b = draw(point_arrays(min_rows=a.shape[0], max_rows=a.shape[0], dim=dim))
    return np.minimum(a, b), np.maximum(a, b)


@st.composite
def tied_distributions(draw, max_size: int = 6):
    n = draw(st.integers(min_value=1, max_value=max_size))
    values = draw(
        st.lists(
            st.integers(min_value=0, max_value=8).map(float),
            min_size=n,
            max_size=n,
        )
    )
    probs = draw(probability_vectors(min_size=n, max_size=n))
    return DiscreteDistribution(values, probs)


@st.composite
def distribution_rows(draw, max_rows: int = 4, max_cols: int = 5):
    k = draw(st.integers(min_value=1, max_value=max_rows))
    n = draw(st.integers(min_value=1, max_value=max_cols))
    vals = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=8).map(float), min_size=n, max_size=n),
            min_size=k,
            max_size=k,
        )
    )
    probs = draw(probability_vectors(min_size=n, max_size=n))
    return np.asarray(vals, dtype=float), np.asarray(probs, dtype=float)


def _sorted_rows(vals: np.ndarray, probs: np.ndarray):
    """The QueryContext.sorted_rows representation, built independently."""
    order = np.argsort(vals, axis=1, kind="stable")
    srt = np.take_along_axis(vals, order, axis=1)
    cum = np.zeros((vals.shape[0], vals.shape[1] + 1))
    np.cumsum(probs[order], axis=1, out=cum[:, 1:])
    return srt, cum


# --------------------------------------------------------------------- #
# Distance kernels
# --------------------------------------------------------------------- #


@given(xs=point_arrays(), ys=point_arrays(), metric=st.sampled_from(METRICS))
def test_distance_matrix_matches_scalar(xs, ys, metric):
    batch = K.distance_matrix(xs, ys, metric)
    ref = K.distance_matrix_scalar(xs, ys, metric)
    assert batch.shape == ref.shape
    assert np.allclose(batch, ref, atol=1e-9)


@given(los_his=boxes(), pts=point_arrays(), metric=st.sampled_from(METRICS))
def test_partition_bounds_match_scalar(los_his, pts, metric):
    los, his = los_his
    lo_mat, hi_mat = K.partition_bounds(los, his, pts, metric)
    norm = None if metric == "euclidean" else resolve_norm(metric)
    for b in range(los.shape[0]):
        mbr = MBR(los[b], his[b])
        for j, q in enumerate(pts):
            assert abs(lo_mat[b, j] - mbr.mindist(q, norm)) <= 1e-9
            assert abs(hi_mat[b, j] - mbr.maxdist(q, norm)) <= 1e-9


# --------------------------------------------------------------------- #
# Stochastic order kernels
# --------------------------------------------------------------------- #


@given(dx=tied_distributions(), dy=tied_distributions())
def test_cdf_dominates_matches_scan(dx, dy):
    got = K.cdf_dominates(dx.values, dx.probs, dy.values, dy.probs)
    want = stochastic_leq(dx, dy, counter=_Counter())
    assert got == want


@given(x=distribution_rows(), y=distribution_rows())
def test_cdf_row_kernels_match_scan(x, y):
    xv, xp = x
    yv, yp = y
    k = min(xv.shape[0], yv.shape[0])
    xv, yv = xv[:k], yv[:k]
    many = K.cdf_dominates_many(xv, xp, yv, yp)
    srt = K.cdf_dominates_sorted(*_sorted_rows(xv, xp), *_sorted_rows(yv, yp))
    for i in range(k):
        ref = stochastic_leq(
            DiscreteDistribution(xv[i], xp),
            DiscreteDistribution(yv[i], yp),
            counter=_Counter(),
        )
        assert bool(many[i]) == ref
        assert bool(srt[i]) == ref


# --------------------------------------------------------------------- #
# MBR dominance and pruning kernels
# --------------------------------------------------------------------- #


@given(
    u_boxes=boxes(),
    v_box=boxes(max_boxes=1),
    q_box=boxes(max_boxes=1),
    strict=st.booleans(),
)
def test_mbr_dominance_mask_matches_scalar(u_boxes, v_box, q_box, strict):
    los, his = u_boxes
    v_mbr = MBR(v_box[0][0], v_box[1][0])
    q_mbr = MBR(q_box[0][0], q_box[1][0])
    mask = K.mbr_dominance_mask(los, his, v_mbr, q_mbr, strict=strict)
    cached = K.mbr_dominance_mask(
        los,
        his,
        v_mbr,
        q_mbr,
        strict=strict,
        u_max_sq=K.mbr_corner_terms(los, his, q_mbr.lo, q_mbr.hi),
    )
    ref = [
        mbr_dominates(MBR(lo, hi), v_mbr, q_mbr, strict=strict)
        for lo, hi in zip(los, his)
    ]
    assert mask.tolist() == ref
    assert cached.tolist() == ref


@given(du=point_arrays(dim=3), dv=point_arrays(dim=3))
def test_halfspace_adjacency_matches_scalar(du, dv):
    du = np.abs(du)  # distance vectors are non-negative
    dv = np.abs(dv)
    adj = K.halfspace_adjacency(du, dv)
    for i in range(du.shape[0]):
        for j in range(dv.shape[0]):
            assert bool(adj[i, j]) == bool(np.all(du[i] <= dv[j] + 1e-9))


@given(stats=point_arrays(dim=3), v=point_arrays(min_rows=1, max_rows=1, dim=3))
def test_statistic_prune_matches_scalar(stats, v):
    u_stats = np.sort(np.abs(stats), axis=1)  # (min, mean, max) triples
    v_stats = np.sort(np.abs(v[0]))
    mask = K.statistic_prune(u_stats, v_stats)
    for i, (u_min, u_mean, u_max) in enumerate(u_stats):
        ref = not (
            u_min > v_stats[0] + 1e-9
            or u_mean > v_stats[1] + 1e-9
            or u_max > v_stats[2] + 1e-9
        )
        assert bool(mask[i]) == ref


@given(box=boxes(max_boxes=1), pts=point_arrays())
def test_points_in_box_matches_scalar(box, pts):
    lo, hi = box[0][0], box[1][0]
    mask = K.points_in_box(lo, hi, pts)
    mbr = MBR(lo, hi)
    assert mask.tolist() == [bool(mbr.contains_point(p)) for p in pts]


# --------------------------------------------------------------------- #
# End to end: kernels on/off must yield identical candidate sets
# --------------------------------------------------------------------- #

small_scenes = st.tuples(
    st.lists(
        uncertain_objects(max_instances=3, coord_range=8.0),
        min_size=2,
        max_size=6,
    ),
    uncertain_objects(max_instances=3, coord_range=8.0, uniform_probs=True),
)


@settings(max_examples=20, deadline=None)
@given(
    scene=small_scenes,
    kind=st.sampled_from(["SSD", "SSSD", "PSD", "FSD", "F+SD"]),
    metric=st.sampled_from(["euclidean", "manhattan"]),
    k=st.integers(min_value=1, max_value=2),
)
def test_kernel_mode_preserves_candidates(scene, kind, metric, k):
    objects, query = scene
    for i, obj in enumerate(objects):
        obj.oid = i
    search = NNCSearch(objects)
    outcomes = {}
    for kernels in (False, True):
        ctx = QueryContext(query, metric=metric, kernels=kernels)
        result = search.run(query, kind, ctx=ctx, k=k)
        outcomes[kernels] = sorted(result.oids())
    assert outcomes[False] == outcomes[True]
