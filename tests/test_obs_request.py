"""RequestContext propagation, sampling, structured logs, merged traces."""

from __future__ import annotations

import io
import json
import threading
import time

import pytest

from repro.obs import (
    JsonLogger,
    MetricsRegistry,
    NULL_LOGGER,
    RequestContext,
    Sampler,
    Tracer,
    bind,
    current,
    merged_chrome_trace,
    set_logger,
)
from repro.obs.log import log_event
from repro.obs.tracer import SpanRecord


class TestRequestContext:
    def test_new_generates_ids(self):
        ctx = RequestContext.new()
        assert len(ctx.request_id) == 16 and len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16 and ctx.parent_span_id is None
        assert ctx.sampled is False and ctx.shard is None

    def test_new_honours_caller_request_id(self):
        ctx = RequestContext.new(request_id="abc123")
        assert ctx.request_id == "abc123"

    def test_child_shares_trace_links_parent(self):
        root = RequestContext.new(sampled=True)
        child = root.child(3)
        assert child.request_id == root.request_id
        assert child.trace_id == root.trace_id
        assert child.span_id != root.span_id
        assert child.parent_span_id == root.span_id
        assert child.shard == 3 and child.sampled is True
        assert child.trace_epoch == root.trace_epoch

    def test_wire_round_trip(self):
        child = RequestContext.new(sampled=True, deadline_ms=250.0).child(1)
        back = RequestContext.from_wire(child.to_wire())
        for attr in (
            "request_id", "trace_id", "span_id", "parent_span_id",
            "sampled", "deadline_ms", "shard", "trace_epoch", "started",
        ):
            assert getattr(back, attr) == getattr(child, attr), attr
        # Local-only state never crosses the wire.
        assert "tracer" not in child.to_wire()
        assert "shard_spans" not in child.to_wire()

    def test_bind_current_and_nesting(self):
        assert current() is None
        root = RequestContext.new()
        child = root.child(0)
        with bind(root):
            assert current() is root
            with bind(child):
                assert current() is child
            assert current() is root
        assert current() is None

    def test_bind_is_thread_local(self):
        root = RequestContext.new()
        seen = []

        def other():
            seen.append(current())

        with bind(root):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen == [None]

    def test_deadline_accounting(self):
        ctx = RequestContext.new(deadline_ms=10_000.0)
        assert 0.0 <= ctx.elapsed_ms() < 5_000.0
        assert 5_000.0 < ctx.remaining_ms() <= 10_000.0
        assert RequestContext.new().remaining_ms() is None

    def test_add_shard_spans(self):
        root = RequestContext.new(sampled=True)
        root.add_shard_spans(2, [SpanRecord("s", 0.0, 1.0, 0, None, {}, {})])
        root.add_shard_spans(0, [])
        assert [shard for shard, _ in root.shard_spans] == [2, 0]


class TestSampler:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Sampler(1.5)
        with pytest.raises(ValueError):
            Sampler(-0.1)

    def test_zero_rate_never_samples(self):
        s = Sampler(0.0)
        assert not any(s.decide() for _ in range(100))
        assert s.decisions == 100 and s.sampled == 0

    def test_full_rate_always_samples(self):
        s = Sampler(1.0)
        assert all(s.decide() for _ in range(50))
        assert s.sampled == 50

    def test_deterministic_floor_of_n_times_rate(self):
        # The leaky accumulator guarantees exactly floor(n * r) samples of
        # the first n — a 1% rate really is every 100th request.
        s = Sampler(0.01)
        decisions = [s.decide() for _ in range(1000)]
        assert sum(decisions) == 10
        assert decisions.index(True) == 99  # the 100th request

    def test_quarter_rate_pattern(self):
        s = Sampler(0.25)
        assert [s.decide() for _ in range(8)] == [
            False, False, False, True, False, False, False, True,
        ]


class TestJsonLogger:
    def _logger(self, **kwargs):
        buf = io.StringIO()
        return JsonLogger(buf, service="t", **kwargs), buf

    def test_one_json_line_per_event(self):
        logger, buf = self._logger()
        logger.log("a", x=1)
        logger.log("b", y="z")
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert [l["event"] for l in lines] == ["a", "b"]
        assert lines[0]["x"] == 1 and lines[0]["service"] == "t"
        assert logger.emitted == 2

    def test_request_correlation_stamped_from_context(self):
        logger, buf = self._logger()
        ctx = RequestContext.new().child(4)
        with bind(ctx):
            logger.log("inside")
        logger.log("outside")
        inside, outside = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert inside["request_id"] == ctx.request_id
        assert inside["trace_id"] == ctx.trace_id
        assert inside["shard"] == 4
        assert "request_id" not in outside

    def test_min_level_filters(self):
        logger, buf = self._logger(min_level="warning")
        logger.log("dropped", level="info")
        logger.log("kept", level="error")
        lines = buf.getvalue().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["event"] == "kept"
        with pytest.raises(ValueError):
            JsonLogger(io.StringIO(), min_level="loud")

    def test_non_jsonable_fields_stringified(self):
        logger, buf = self._logger()
        logger.log("e", obj=object(), seq=(1, 2), nested={"k": {1, 2} })
        record = json.loads(buf.getvalue())
        assert isinstance(record["obj"], str)
        assert record["seq"] == [1, 2]
        assert isinstance(record["nested"]["k"], str)

    def test_module_logger_install_and_reset(self):
        buf = io.StringIO()
        set_logger(JsonLogger(buf, service="t"))
        try:
            log_event("hello", n=1)
        finally:
            set_logger(None)
        assert json.loads(buf.getvalue())["event"] == "hello"
        # Null logger swallows events without error.
        log_event("dropped")
        assert NULL_LOGGER.enabled is False


class TestTracerConcurrency:
    def test_two_requests_sharing_one_tracer_keep_ancestry_isolated(self):
        # Satellite fix: the open-span stack is a ContextVar, so concurrent
        # requests on one tracer can never adopt each other's parents.
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def request(tag: str) -> None:
            with tracer.span(f"root-{tag}"):
                barrier.wait(timeout=5.0)  # both roots open simultaneously
                time.sleep(0.01)
                with tracer.span(f"leaf-{tag}"):
                    barrier.wait(timeout=5.0)

        threads = [
            threading.Thread(target=request, args=(t,)) for t in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {s.name: s for s in tracer.spans()}
        assert len(by_name) == 4
        for tag in ("a", "b"):
            assert by_name[f"root-{tag}"].depth == 0
            assert by_name[f"root-{tag}"].parent is None
            assert by_name[f"leaf-{tag}"].depth == 1
            # The leaf's parent is its own request's root, never the other's.
            assert by_name[f"leaf-{tag}"].parent == f"root-{tag}"

    def test_shared_epoch_aligns_timelines(self):
        root = Tracer()
        shard = Tracer(epoch=root.epoch)
        with root.span("a"):
            with shard.span("b"):
                pass
        a, = root.spans()
        b, = shard.spans()
        # Same clock base: the nested span starts after the outer one.
        assert b.start >= a.start


class TestSpanRecordWire:
    def test_from_dict_round_trip(self):
        rec = SpanRecord("s", 1.5, 0.25, 2, "p", {"shard": 3}, {"c": 7})
        back = SpanRecord.from_dict(rec.to_dict())
        for attr in ("name", "start", "duration", "depth", "parent",
                     "labels", "counter_deltas"):
            assert getattr(back, attr) == getattr(rec, attr), attr

    def test_from_dict_defaults(self):
        back = SpanRecord.from_dict({"name": "x", "start": 0, "duration": 1})
        assert back.depth == 0 and back.parent is None
        assert back.labels == {} and back.counter_deltas == {}


class TestMergedChromeTrace:
    def _spans(self, *names):
        tracer = Tracer()
        for name in names:
            with tracer.span(name):
                pass
        return tracer.spans()

    def test_rows_and_correlation(self):
        doc = merged_chrome_trace(
            self._spans("query"),
            [(0, self._spans("shard-search")), (2, self._spans("shard-search"))],
            trace_id="t" * 32,
            request_id="r" * 16,
        )
        events = doc["traceEvents"]
        json.dumps(doc)  # well-formed
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {0: "request", 1: "shard-0", 3: "shard-2"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {0, 1, 3}
        assert all(e["args"]["trace_id"] == "t" * 32 for e in spans)
        assert all(e["args"]["request_id"] == "r" * 16 for e in spans)

    def test_without_correlation_args(self):
        doc = merged_chrome_trace(self._spans("query"))
        span = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert "trace_id" not in span["args"]
