"""Tests for the experiment runner and report writer."""

import pytest

from repro.experiments.figures import FIGURES, FigureResult
from repro.experiments.runner import PAPER_REFERENCE, main, write_report


class TestPaperReferences:
    def test_every_figure_has_reference_note(self):
        assert set(PAPER_REFERENCE) == set(FIGURES)


class TestWriteReport:
    def test_report_structure(self, tmp_path):
        results = {
            "fig10": (
                FigureResult(
                    "Figure 10",
                    "demo",
                    [
                        {
                            "dataset": "A",
                            "SSD": 1.0,
                            "SSSD": 2.0,
                            "PSD": 3.0,
                            "FSD": 6.0,
                            "F+SD": 9.0,
                        }
                    ],
                ),
                1.25,
            ),
            "fig14": (
                FigureResult(
                    "Figure 14",
                    "demo",
                    [
                        {"progress_%": 50.0, "time_s": 0.2, "avg_quality": 5.0},
                        {"progress_%": 100.0, "time_s": 1.0, "avg_quality": 4.0},
                    ],
                ),
                0.5,
            ),
        }
        out = tmp_path / "report.md"
        write_report(results, "tiny", out)
        text = out.read_text()
        assert "# EXPERIMENTS" in text
        assert "Figure 10" in text
        assert "Figure 14" in text
        assert "_Regenerated in 1.2s._" in text or "1.3s" in text
        assert "Appendix C.2" in text
        assert "HOLDS" in text or "VIOLATED" in text

    def test_report_without_summary_figures(self, tmp_path):
        results = {
            "fig12": (FigureResult("Figure 12", "times", [{"x": 1}]), 0.1)
        }
        out = tmp_path / "r.md"
        write_report(results, "tiny", out)
        assert "Appendix C.2" not in out.read_text()


class TestMain:
    def test_unknown_scale_rejected(self, capsys):
        assert main(["galactic"]) == 2
        assert "unknown scale" in capsys.readouterr().out
