"""Pool backend: shared-memory snapshots, worker lifecycle, exactness pins.

The ``pool`` backend's contract (DESIGN.md §15):

* answers bit-identical to the serial cascade — candidates AND dominator
  counts — for every operator, partitioner, and k;
* per-query task tuples carry no shard arrays: a few hundred bytes no
  matter how large the dataset is;
* mutations publish a new shared-memory epoch instead of restarting the
  workers (same pids across insert/delete/compaction);
* a dead worker surfaces as :class:`ShardBackendError` (503 at the HTTP
  layer), never a hang, and the pool rebuilds lazily on the next query;
* an epoch swap during an in-flight query still answers from the
  pre-swap snapshot (the previous segment is retained);
* close/drain unlinks every published segment — nothing left in /dev/shm.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.nnc import NNCSearch
from repro.core.operators import make_operator
from repro.datasets import synthetic
from repro.serve.shard import ShardBackendError, ShardedSearch
from repro.serve.shm import (
    SegmentStore,
    attach_shard,
    pack_shard,
    pool_run_one,
    segment_exists,
)

from .test_serve_shard import shard_scenes

#: fork boots workers in milliseconds; spawn-safety has its own test.
START = "fork" if "fork" in multiprocessing.get_all_start_methods() else None

OPERATORS = ("SSD", "SSSD", "PSD", "FSD")


def make_workload(n=80, m=4, seed=3):
    rng = np.random.default_rng(seed)
    centers = synthetic.anticorrelated_centers(n, 2, rng)
    objects = synthetic.make_objects(centers, m, 120.0, rng)
    query = synthetic.make_query(centers[n // 3], 3, 80.0, rng, oid="Q")
    return objects, query


@pytest.fixture(scope="module")
def workload():
    return make_workload()


def make_pool(objects, **kw):
    kw.setdefault("shards", 3)
    kw.setdefault("workers", 2)
    kw.setdefault("start_method", START)
    return ShardedSearch(objects, backend="pool", **kw)


# --------------------------------------------------------------------- #
# Segment round-trip
# --------------------------------------------------------------------- #


def _release_mapping(shm, holder: list) -> None:
    """Drop the zero-copy views, then unmap (mirrors shm._release).

    ``holder`` must be the only remaining reference to the rebuilt search
    (callers ``del`` their local first), so clearing it lets the views die.
    """
    import gc

    holder.clear()
    gc.collect()
    try:
        shm.close()
    except BufferError:  # a view escaped into a still-live result
        pass


class TestSegments:
    def test_pack_attach_roundtrip_is_structurally_identical(self, workload):
        objects, query = workload
        parent = NNCSearch(objects[:40])
        store = SegmentStore()
        name = store.publish(0, 0, parent)

        def check(rebuilt):
            assert [o.oid for o in rebuilt.objects] == [
                o.oid for o in parent.objects
            ]
            assert len(rebuilt.tree) == len(parent.tree)
            # Zero-copy: worker arrays are read-only views, not copies.
            assert not rebuilt.objects[0].points.flags.writeable
            assert not rebuilt.objects[0].points.flags.owndata
            np.testing.assert_array_equal(
                rebuilt.objects[7].points, parent.objects[7].points
            )
            # Same traversal: identical answers including counts.
            for op in OPERATORS:
                a = parent.run(query, op, k=2)
                b = rebuilt.run(query, op, k=2)
                assert a.oids() == b.oids()
                assert a.dominator_counts == b.dominator_counts

        try:
            shm, rebuilt = attach_shard(name)
            try:
                check(rebuilt)
            finally:
                holder = [rebuilt]
                del rebuilt
                _release_mapping(shm, holder)
        finally:
            store.close()
        assert not segment_exists(name)

    def test_masked_objects_survive_the_snapshot(self, workload):
        objects, query = workload
        parent = NNCSearch(objects[:30])
        parent.mask_object(parent.objects[4])
        store = SegmentStore()
        name = store.publish(0, 0, parent)
        try:
            shm, rebuilt = attach_shard(name)
            try:
                assert rebuilt.masked_count == 1
                masked_oid = parent.objects[4].oid
                assert masked_oid not in rebuilt.run(query, "SSD", k=3).oids()
            finally:
                holder = [rebuilt]
                del rebuilt
                _release_mapping(shm, holder)
        finally:
            store.close()

    def test_empty_shard_packs(self):
        parent = NNCSearch([])
        blob = pack_shard(parent)
        store = SegmentStore()
        name = store.publish(0, 0, parent)
        try:
            shm, rebuilt = attach_shard(name)
            assert rebuilt.objects == []
            shm.close()
        finally:
            store.close()
        assert len(blob) >= 8


# --------------------------------------------------------------------- #
# Exactness: pool == serial cascade, bit for bit
# --------------------------------------------------------------------- #


class TestExactness:
    @pytest.mark.parametrize("operator", OPERATORS)
    def test_pool_equals_serial(self, workload, operator):
        objects, query = workload
        serial = ShardedSearch(objects, shards=3, backend="serial")
        pool = make_pool(objects)
        try:
            for k in (1, 3):
                a = serial.run(query, operator, k=k)
                b = pool.run(query, operator, k=k)
                assert a.oids() == b.oids()
                assert a.dominator_counts == b.dominator_counts
        finally:
            serial.close()
            pool.close()

    def test_candidates_are_parent_objects(self, workload):
        objects, query = workload
        pool = make_pool(objects)
        try:
            result = pool.run(query, "FSD", k=2)
            parent_ids = {id(o) for o in objects}
            assert all(id(c) in parent_ids for c in result.candidates)
        finally:
            pool.close()

    def test_spawn_start_method(self, workload):
        # The default start method: workers inherit nothing by fork.
        objects, query = workload
        serial = ShardedSearch(objects, shards=2, backend="serial")
        pool = ShardedSearch(
            objects, shards=2, backend="pool", workers=2,
            start_method="spawn",
        )
        try:
            a = serial.run(query, "PSD", k=2)
            b = pool.run(query, "PSD", k=2)
            assert a.oids() == b.oids()
            assert a.dominator_counts == b.dominator_counts
        finally:
            serial.close()
            pool.close()


@given(shard_scenes)
@settings(max_examples=20, deadline=None)
def test_property_pool_equals_serial_cascade(scene):
    objects, query, shards, partitioner, operator, k = scene
    for i, obj in enumerate(objects):
        obj.oid = i
    serial = ShardedSearch(
        objects, shards=shards, partitioner=partitioner, backend="serial"
    )
    pool = ShardedSearch(
        objects,
        shards=shards,
        partitioner=partitioner,
        backend="pool",
        workers=2,
        start_method=START,
    )
    try:
        expected = serial.run(query, operator, k=k)
        got = pool.run(query, operator, k=k)
        assert sorted(got.oids()) == sorted(expected.oids())
        by_oid = dict(zip(expected.oids(), expected.dominator_counts))
        assert dict(zip(got.oids(), got.dominator_counts)) == by_oid
    finally:
        serial.close()
        pool.close()


# --------------------------------------------------------------------- #
# Message size: shard state never rides the task pipe
# --------------------------------------------------------------------- #


class TestPayloadSize:
    def _task_bytes(self, n: int) -> int:
        objects, query = make_workload(n=n, seed=9)
        pool = make_pool(objects, shards=2)
        try:
            pool.run(query, "SSD")  # publishes segments
            name = pool._shard_segments[0][-1]
            task = (
                0, pool._pool_epoch, name, query, make_operator("SSD"),
                3, "euclidean", True, None, None,
            )
            return len(pickle.dumps(task))
        finally:
            pool.close()

    def test_task_tuple_is_small_and_size_independent(self):
        small = self._task_bytes(40)
        large = self._task_bytes(800)
        assert small < 4096 and large < 4096
        # 20x the dataset must not grow the message (no pickled arrays).
        assert abs(large - small) < 256


# --------------------------------------------------------------------- #
# Lifecycle: mutations, worker death, epoch swap, cleanup
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_mutations_keep_the_same_workers(self, workload):
        objects, query = workload
        pool = make_pool(objects)
        try:
            first = pool.run(query, "SSD", k=2)
            pids0 = pool.pool_pids()
            assert pids0 and all(
                row["pid"] in pids0 for row in first.per_shard
            )
            extra = synthetic.make_query(
                query.mbr.center, 2, 1.0, np.random.default_rng(1), oid="X"
            )
            shard = pool.insert(extra)
            after_insert = pool.run(query, "SSD", k=2)
            assert "X" in after_insert.oids()
            assert pool.mask(shard, extra)
            assert pool.compact(0.0) == 1
            after_all = pool.run(query, "SSD", k=2)
            assert "X" not in after_all.oids()
            # Three mutations, zero worker restarts.
            assert pool.pool_pids() == pids0
            assert pool._pool_epoch >= 3
        finally:
            pool.close()

    def test_worker_death_is_a_backend_error_not_a_hang(self, workload):
        objects, query = workload
        pool = make_pool(objects)
        try:
            pool.run(query, "SSD")
            for pid in pool.pool_pids():
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 60
            with pytest.raises(ShardBackendError):
                while time.monotonic() < deadline:
                    pool.run(query, "SSD")
            # The pool heals: segments survived, workers rebuild lazily.
            healed = pool.run(query, "SSD")
            assert healed.oids()
            assert pool.pool_pids()
        finally:
            pool.close()

    def test_epoch_swap_mid_flight_answers_pre_swap(self, workload):
        objects, query = workload
        pool = make_pool(objects, shards=2)
        serial_pre = ShardedSearch(objects, shards=2, backend="serial")
        try:
            pool.run(query, "SSD")
            # Snapshot an in-flight task's addressing *before* the swap.
            pre_name = pool._shard_segments[0][-1]
            pre_epoch = pool._pool_epoch
            pre_objects = pool._snapshot_objects[pre_name]
            close = synthetic.make_query(
                query.mbr.center, 2, 0.5, np.random.default_rng(2), oid="NEW"
            )
            pool.insert(close, shard=0)  # publishes a new epoch
            assert pool._shard_segments[0][-1] != pre_name
            # The pre-swap segment is retained for exactly this task.
            assert segment_exists(pre_name)
            task = (
                0, pre_epoch, pre_name, query, make_operator("SSD"),
                1, "euclidean", True, None, None,
            )
            payload = pool._pool_exec.submit(pool_run_one, task).result(60)
            assert payload[0] == "ok"
            got = sorted(pre_objects[i].oid for i in payload[3])
            expected = sorted(
                serial_pre.searches[0].run(query, "SSD", k=1).oids()
            )
            assert got == expected  # pre-swap answer, no "NEW"
            assert "NEW" not in got
        finally:
            serial_pre.close()
            pool.close()

    def test_second_swap_retires_the_oldest_segment(self, workload):
        objects, query = workload
        pool = make_pool(objects, shards=2)
        try:
            pool.run(query, "SSD")
            first = pool._shard_segments[0][-1]
            rng = np.random.default_rng(5)
            for i in range(2):
                obj = synthetic.make_query(
                    query.mbr.center, 2, 1.0, rng, oid=f"N{i}"
                )
                pool.insert(obj, shard=0)
            assert not segment_exists(first)  # two swaps: retired
            assert len(pool._shard_segments[0]) == 2
        finally:
            pool.close()

    def test_close_unlinks_every_segment(self, workload):
        objects, query = workload
        pool = make_pool(objects)
        pool.run(query, "SSD")
        names = [n for kept in pool._shard_segments for n in kept]
        assert names and all(segment_exists(n) for n in names)
        pool.close()
        assert all(not segment_exists(n) for n in names)
        assert pool._snapshot_objects == {}


# --------------------------------------------------------------------- #
# HTTP mapping: dead backend -> 503, retryable
# --------------------------------------------------------------------- #


class TestServeIntegration:
    def test_backend_error_maps_to_503(self, workload, monkeypatch):
        from repro.serve.server import ServeApp
        from repro.serve.updates import DatasetManager

        objects, _ = workload
        manager = DatasetManager(objects, shards=2)
        app = ServeApp(manager)
        try:
            def boom(*args, **kwargs):
                raise ShardBackendError("pool worker died mid-query")

            monkeypatch.setattr(manager, "query", boom)
            status, body = app.dispatch(
                "POST", "/query",
                {"points": [[0.0, 0.0], [1.0, 1.0]], "operator": "SSD"},
            )
            assert status == 503
            assert body["retryable"] is True
            assert "worker" in body["error"]
        finally:
            manager.close()

    def test_dataset_manager_forwards_pool_args(self, workload):
        from repro.serve.updates import DatasetManager

        objects, query = workload
        manager = DatasetManager(
            objects, shards=2, backend="pool", workers=2, start_method=START
        )
        try:
            result, epoch = manager.query(query, "SSD", k=1)
            assert result.backend == "pool"
            assert [row["pid"] for row in result.per_shard]
        finally:
            manager.close()
