"""Tests for the figure registry, provenance, trajectory and dashboard."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import provenance, registry, trajectory
from repro.experiments.dashboard import render_dashboard, svg_chart
from repro.obs.metrics import MetricsRegistry, slo_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent
ALL_IDS = registry.registered_ids()


@pytest.fixture(scope="module")
def inputs(tmp_path_factory):
    """Smoke-scale inputs with a synthetic two-record trajectory store."""
    traj = tmp_path_factory.mktemp("traj") / "trajectory.jsonl"
    for name in ("BENCH_kernels.json", "BENCH_serve.json"):
        payload = json.loads((REPO_ROOT / name).read_text())
        trajectory.append(traj, trajectory.record_for(payload))
    return registry.BuildInputs(scale="smoke", trajectory=traj)


@pytest.fixture(scope="module")
def built():
    """Cross-test cache so each figure builds exactly once per run."""
    return {}


def _artifact(fid, inputs, built):
    if fid not in built:
        built[fid] = registry.build_figure(fid, inputs)
    return built[fid]


@pytest.mark.parametrize("fid", ALL_IDS)
class TestEveryRegisteredFigure:
    def test_builds_and_self_checks(self, fid, inputs, built):
        art = _artifact(fid, inputs, built)
        summary = registry.self_check(art)
        assert summary["rows"] > 0
        assert art.fid == fid
        assert art.category in (
            "paper", "bench", "observability", "trajectory"
        )

    def test_vega_lite_spec_shape(self, fid, inputs, built):
        spec = registry.vega_lite_spec(_artifact(fid, inputs, built))
        assert spec["$schema"] == registry.VEGA_LITE_SCHEMA
        assert spec["data"]["values"], "spec must inline its data"
        assert "mark" in spec and "encoding" in spec
        for channel in ("x", "y"):
            assert spec["encoding"][channel]["field"]
        json.dumps(spec)  # self-contained and serializable

    def test_csv_round_trips(self, fid, inputs, built):
        art = _artifact(fid, inputs, built)
        text = registry.rows_to_csv(art.rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(art.rows)
        assert set(parsed[0]) == {
            key for row in art.rows for key in row
        }


class TestRegistryLookup:
    def test_unknown_id_is_a_located_error(self):
        with pytest.raises(registry.UnknownFigureError) as exc:
            registry.build_figure("fig99")
        assert "fig99" in str(exc.value)
        assert "registered ids" in str(exc.value)

    def test_get_returns_entry(self):
        fig = registry.get("kernels-e2e")
        assert fig.category == "bench"

    def test_registry_covers_paper_and_bench(self):
        assert {"fig10", "fig16", "kernels-micro", "serve-scaling",
                "slo-quantiles", "perf-trajectory"} <= set(ALL_IDS)


class TestProvenance:
    def test_collect_shape(self):
        rec = provenance.collect()
        assert set(rec) == {
            "sha", "branch", "dirty", "date", "cpu_count", "hostname",
            "python",
        }
        assert rec["date"].endswith("Z")
        assert rec["cpu_count"] >= 1

    def test_stamp_writes_meta_in_place(self):
        payload = {"scale": "tiny", "meta": {"k": 1}}
        assert provenance.stamp(payload) is payload
        assert payload["meta"]["k"] == 1
        assert "sha" in payload["meta"]["provenance"]

    def test_git_facts_degrade_outside_a_repo(self, tmp_path):
        rec = provenance.git_describe(tmp_path)
        assert rec["sha"] == "unknown"
        assert rec["branch"] == "unknown"


class TestTrajectory:
    RECORD = {
        "bench": "kernels", "scale": "tiny", "sha": "abc123",
        "branch": "main", "date": "2026-08-07T00:00:00Z",
        "cpu_count": 4, "hostname": "box",
        "metrics": {"e2e_speedup_geomean": 10.0},
    }

    def test_append_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "t.jsonl"
        assert trajectory.append(path, dict(self.RECORD)) == "appended"
        assert trajectory.append(path, dict(self.RECORD)) == "unchanged"
        assert len(trajectory.load(path)) == 1

    def test_same_key_fresher_numbers_replace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trajectory.append(path, dict(self.RECORD))
        fresher = dict(self.RECORD, metrics={"e2e_speedup_geomean": 11.0})
        assert trajectory.append(path, fresher) == "replaced"
        records = trajectory.load(path)
        assert len(records) == 1
        assert records[0]["metrics"]["e2e_speedup_geomean"] == 11.0

    def test_new_sha_appends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trajectory.append(path, dict(self.RECORD))
        trajectory.append(path, dict(self.RECORD, sha="def456"))
        assert len(trajectory.load(path)) == 2

    def test_load_missing_file_is_empty(self, tmp_path):
        assert trajectory.load(tmp_path / "absent.jsonl") == []

    def test_load_locates_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"t\.jsonl:2"):
            trajectory.load(path)

    def test_record_for_rejects_unknown_payloads(self):
        with pytest.raises(ValueError, match="neither"):
            trajectory.record_for({"something": "else"})

    def test_record_for_prefers_stamped_provenance(self):
        payload = {
            "scale": "tiny", "end_to_end": [],
            "meta": {"provenance": {"sha": "feedface", "branch": "x"}},
        }
        rec = trajectory.record_for(payload)
        assert rec["sha"] == "feedface"
        assert rec["branch"] == "x"

    def test_empty_trajectory_is_a_located_figure_error(self, tmp_path):
        inputs = registry.BuildInputs(trajectory=tmp_path / "empty.jsonl")
        with pytest.raises(registry.FigureInputError, match="perf-trajectory"):
            registry.build_figure("perf-trajectory", inputs)


class TestSloSnapshot:
    def _registry_with_traffic(self):
        reg = MetricsRegistry()
        for elapsed in (0.01, 0.02, 0.5):
            reg.observe("repro_query_seconds", elapsed, {"operator": "FSD"})
        reg.inc("repro_serve_requests_total", 3,
                {"route": "/query", "status": "200"})
        reg.inc("repro_slo_burn_total", 2, {"slo": "latency"})
        return reg

    def test_snapshot_shape_matches_status_body(self):
        snap = slo_snapshot(self._registry_with_traffic(), 250.0)
        assert set(snap) == {
            "latency_ms_target", "latency_seconds", "degraded_ratio",
            "error_ratio", "burn", "overflow", "clamped",
        }
        assert snap["latency_ms_target"] == 250.0
        assert set(snap["latency_seconds"]["FSD"]) == {"p50", "p95", "p99"}
        assert snap["burn"] == {"latency": 2.0}
        # no observation above the top bucket bound -> honest and empty
        assert snap["overflow"] == {} and snap["clamped"] == {}

    def test_slo_rows_accepts_status_body(self):
        snap = slo_snapshot(self._registry_with_traffic(), 250.0)
        rows, burn = registry.slo_rows({"slo": snap})
        assert rows[0]["operator"] == "FSD"
        assert rows[0]["p99_ms"] > rows[0]["p50_ms"] > 0
        assert burn == {"latency": 2.0}

    def test_slo_rows_accepts_slo_json_shape(self):
        rows, burn = registry.slo_rows({
            "latency_ms": {"SSD": {"p50": 1.0, "p95": 2.0, "p99": 3.0}},
            "burn": {"error": 1},
        })
        assert rows == [
            {"operator": "SSD", "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0}
        ]
        assert burn == {"error": 1}

    def test_slo_rows_rejects_garbage(self):
        with pytest.raises(registry.FigureInputError):
            registry.slo_rows({"nope": 1})


class TestDashboard:
    def test_render_is_self_contained_html(self, inputs, built):
        arts = [
            _artifact("kernels-e2e", inputs, built),
            _artifact("perf-trajectory", inputs, built),
        ]
        verdict = {
            "kind": "kernels", "baseline": "a.json", "current": "b.json",
            "informational": False,
            "gates": [
                {"gate": "SSD", "status": "pass", "measured": 0.5,
                 "baseline": 0.5, "detail": "+0.0%"},
                {"gate": "PSD", "status": "skip", "measured": None,
                 "baseline": None, "detail": "SKIPPED (cpu_count=1)"},
            ],
        }
        html = render_dashboard(
            arts, verdicts=[verdict],
            provenance_record=provenance.collect(), scale="smoke",
        )
        assert html.startswith("<!doctype html>")
        for art in arts:
            assert f'id="{art.fid}"' in html
            assert f"data/{art.fid}.csv" in html
        assert "Bench gates" in html
        assert "<svg" in html
        assert "prefers-color-scheme: dark" in html
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html
        assert 'src="http' not in html and "@import" not in html

    def test_svg_chart_draws_marks(self, inputs, built):
        line_svg = svg_chart(_artifact("perf-trajectory", inputs, built))
        assert "<polyline" in line_svg
        bar_svg = svg_chart(_artifact("kernels-e2e", inputs, built))
        assert "<rect" in bar_svg
        assert "<title>" in bar_svg  # native tooltips


class TestFiguresCli:
    def test_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        for fid in ("fig10", "kernels-micro", "perf-trajectory"):
            assert fid in out

    def test_no_ids_is_usage_error(self, capsys):
        assert main(["figures"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_id_is_usage_error(self, capsys):
        assert main(["figures", "fig99", "--check"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_check_writes_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["figures", "kernels-micro", "--check"]) == 0
        assert "self-check ok" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_build_writes_csv_spec_and_dashboard(self, tmp_path, capsys):
        out_dir = tmp_path / "dash"
        assert main([
            "figures", "kernels-e2e", "slo-quantiles",
            "--out-dir", str(out_dir),
        ]) == 0
        assert (out_dir / "index.html").exists()
        for fid in ("kernels-e2e", "slo-quantiles"):
            assert (out_dir / "data" / f"{fid}.csv").exists()
            spec = json.loads(
                (out_dir / "specs" / f"{fid}.vl.json").read_text()
            )
            assert spec["$schema"] == registry.VEGA_LITE_SCHEMA

    def test_missing_input_is_exit_1(self, tmp_path, capsys):
        assert main([
            "figures", "kernels-e2e",
            "--kernels", str(tmp_path / "absent.json"),
            "--check",
        ]) == 1
        assert "not found" in capsys.readouterr().err

    def test_verdict_lands_on_dashboard(self, tmp_path):
        verdict = tmp_path / "verdict.json"
        verdict.write_text(json.dumps({
            "kind": "kernels", "baseline": "a", "current": "b",
            "informational": False,
            "gates": [{"gate": "SSD", "status": "fail", "measured": 1.0,
                       "baseline": 0.5, "detail": "regressed"}],
        }))
        out_dir = tmp_path / "dash"
        assert main([
            "figures", "kernels-micro", "--out-dir", str(out_dir),
            "--verdict", str(verdict),
        ]) == 0
        html = (out_dir / "index.html").read_text()
        assert "Bench gates" in html and "regressed" in html

    def test_client_status_accepts_slo_json_format(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["client", "status", "--format", "slo-json"]
        )
        assert args.format == "slo-json"
