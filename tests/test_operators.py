"""Operator-level tests: every filter stack must agree with brute force."""

import itertools

import numpy as np
import pytest

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.core.context import QueryContext
from repro.core.operators import OperatorKind, make_operator

from .conftest import random_scene

BRUTES = {
    "SSD": brute_s_dominates,
    "SSSD": brute_ss_dominates,
    "PSD": brute_p_dominates,
    "FSD": brute_f_dominates,
}


def _check_agreement(objects, query, kind, **flags):
    op = make_operator(kind, **flags)
    brute = BRUTES[kind]
    ctx = QueryContext(query)
    for u, v in itertools.permutations(objects, 2):
        assert op.dominates(u, v, ctx) == brute(u, v, query), (
            kind,
            flags,
            u.oid,
            v.oid,
        )


class TestAgainstBruteForce:
    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_default_flags(self, kind, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=12, m=4, m_q=3)
        _check_agreement(objects, query, kind)

    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD"])
    def test_no_filters(self, kind, rng):
        objects, query = random_scene(rng, n_objects=10, m=4, m_q=3)
        _check_agreement(
            objects,
            query,
            kind,
            use_statistics=False,
            use_mbr_validation=False,
            use_cover_pruning=False,
            use_geometry=False,
            use_level=False,
        )

    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    def test_level_filters_on(self, kind, rng):
        objects, query = random_scene(rng, n_objects=10, m=6, m_q=3)
        _check_agreement(objects, query, kind, use_level=True)

    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD"])
    def test_each_flag_alone(self, kind, rng):
        objects, query = random_scene(rng, n_objects=8, m=5, m_q=3)
        base = dict(
            use_statistics=False,
            use_mbr_validation=False,
            use_cover_pruning=False,
            use_geometry=False,
            use_level=False,
        )
        for flag in base:
            flags = dict(base)
            flags[flag] = True
            _check_agreement(objects, query, kind, **flags)

    def test_weighted_instances(self, rng):
        objects, query = random_scene(
            rng, n_objects=10, m=4, m_q=3, uniform_probs=False
        )
        for kind in ["SSD", "SSSD", "PSD", "FSD"]:
            _check_agreement(objects, query, kind)

    def test_three_dimensional(self, rng):
        objects, query = random_scene(rng, n_objects=8, m=4, m_q=4, dim=3)
        for kind in ["SSD", "SSSD", "PSD", "FSD"]:
            _check_agreement(objects, query, kind)

    def test_single_query_instance(self, rng):
        objects, query = random_scene(rng, n_objects=10, m=4, m_q=1)
        for kind in ["SSD", "SSSD", "PSD", "FSD"]:
            _check_agreement(objects, query, kind)

    def test_duplicate_objects_never_dominate_each_other(self, rng):
        from repro.objects.uncertain import UncertainObject

        objects, query = random_scene(rng, n_objects=3, m=3, m_q=2)
        clone = UncertainObject(objects[0].points, objects[0].probs, oid="clone")
        ctx = QueryContext(query)
        for kind in ["SSD", "SSSD", "PSD", "FSD"]:
            op = make_operator(kind)
            assert not op.dominates(objects[0], clone, ctx), kind
            assert not op.dominates(clone, objects[0], ctx), kind


class TestOperatorFactory:
    def test_by_enum_and_string(self):
        assert make_operator(OperatorKind.P_SD).name == "PSD"
        assert make_operator("F+SD").name == "F+SD"

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_operator("XSD")

    def test_flags_recorded(self):
        op = make_operator("SSD", use_level=True, use_statistics=False)
        assert op.use_level and not op.use_statistics

    def test_fplus_is_mbr_only(self, rng):
        from repro.geometry.mbr import mbr_dominates

        objects, query = random_scene(rng, n_objects=8, m=3, m_q=2)
        op = make_operator("F+SD")
        ctx = QueryContext(query)
        for u, v in itertools.permutations(objects, 2):
            expected = mbr_dominates(u.mbr, v.mbr, query.mbr, strict=True)
            assert op.dominates(u, v, ctx) == expected
