"""Tests for non-Euclidean metric support (Section 2.1's extension remark).

The distribution-based operators work under any Minkowski metric; the
Euclidean-only geometric filters are disabled automatically.  Every operator
and the full Algorithm 1 search are checked against metric-aware brute
forces.
"""

import itertools

import numpy as np
import pytest

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.core.operators import make_operator
from repro.geometry.distance import pairwise_distances
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_equal, stochastic_leq

from .conftest import random_scene

METRICS = ["manhattan", "chebyshev"]


def _dist(obj, query, metric):
    d = pairwise_distances(query.points, obj.points, metric)
    probs = np.outer(query.probs, obj.probs)
    return DiscreteDistribution(d.ravel(), probs.ravel())


def _brute_s(u, v, query, metric):
    du, dv = _dist(u, query, metric), _dist(v, query, metric)
    return stochastic_leq(du, dv) and not stochastic_equal(du, dv)


def _brute_ss(u, v, query, metric):
    du = pairwise_distances(query.points, u.points, metric)
    dv = pairwise_distances(query.points, v.points, metric)
    for qi in range(len(query)):
        a = DiscreteDistribution(du[qi], u.probs)
        b = DiscreteDistribution(dv[qi], v.probs)
        if not stochastic_leq(a, b):
            return False
    return not stochastic_equal(_dist(u, query, metric), _dist(v, query, metric))


def _brute_f(u, v, query, metric):
    du = pairwise_distances(u.points, query.points, metric)
    dv = pairwise_distances(v.points, query.points, metric)
    if np.any(du.max(axis=0) > dv.min(axis=0) + 1e-9):
        return False
    return not stochastic_equal(_dist(u, query, metric), _dist(v, query, metric))


def _brute_p(u, v, query, metric):
    from repro.flow.maxflow import FlowNetwork, max_flow

    du = pairwise_distances(u.points, query.points, metric)
    dv = pairwise_distances(v.points, query.points, metric)
    adj = np.all(du[:, None, :] <= dv[None, :, :] + 1e-9, axis=2)
    m, n = len(u), len(v)
    net = FlowNetwork(m + n + 2)
    for i in range(m):
        net.add_edge(0, 1 + i, float(u.probs[i]))
    for j in range(n):
        net.add_edge(1 + m + j, m + n + 1, float(v.probs[j]))
    for i in range(m):
        for j in range(n):
            if adj[i, j]:
                net.add_edge(1 + i, 1 + m + j, 2.0)
    if max_flow(net, 0, m + n + 1) < 1.0 - 1e-6:
        return False
    return not stochastic_equal(_dist(u, query, metric), _dist(v, query, metric))


BRUTES = {"SSD": _brute_s, "SSSD": _brute_ss, "PSD": _brute_p, "FSD": _brute_f}


class TestOperatorsUnderMetrics:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    def test_agree_with_bruteforce(self, metric, kind):
        rng = np.random.default_rng(5)
        objects, query = random_scene(rng, n_objects=10, m=4, m_q=3)
        ctx = QueryContext(query, metric=metric)
        op = make_operator(kind, use_level=True)
        for u, v in itertools.permutations(objects, 2):
            assert op.dominates(u, v, ctx) == BRUTES[kind](u, v, query, metric), (
                u.oid,
                v.oid,
            )

    @pytest.mark.parametrize("metric", METRICS)
    def test_context_disables_euclidean_machinery(self, metric):
        rng = np.random.default_rng(1)
        objects, query = random_scene(rng, n_objects=3, m=3, m_q=4)
        ctx = QueryContext(query, metric=metric)
        assert not ctx.is_euclidean
        # No hull reduction: every query instance participates.
        assert ctx.hull_points.shape[0] == len(query)


class TestSearchUnderMetrics:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD"])
    def test_nnc_matches_bruteforce(self, metric, kind):
        rng = np.random.default_rng(9)
        objects, query = random_scene(rng, n_objects=18, m=4, m_q=3)
        ctx = QueryContext(query, metric=metric)
        result = NNCSearch(objects).run(query, kind, ctx=ctx)
        brute = BRUTES[kind]
        expected = sorted(
            v.oid
            for v in objects
            if not any(u is not v and brute(u, v, query, metric) for u in objects)
        )
        assert sorted(result.oids()) == expected

    def test_metrics_give_different_results_sometimes(self):
        """Sanity: the metric genuinely matters on anisotropic data."""
        rng = np.random.default_rng(123)
        diffs = 0
        for _ in range(10):
            objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
            search = NNCSearch(objects)
            e = sorted(search.run(query, "SSD", ctx=QueryContext(query)).oids())
            m = sorted(
                search.run(
                    query, "SSD", ctx=QueryContext(query, metric="manhattan")
                ).oids()
            )
            diffs += e != m
        assert diffs > 0

    def test_unknown_metric_rejected(self):
        rng = np.random.default_rng(0)
        objects, query = random_scene(rng, n_objects=2, m=2, m_q=2)
        with pytest.raises(KeyError):
            QueryContext(query, metric="cosine")
