"""Stress tests for the flow solvers on larger random instances."""

import networkx as nx
import numpy as np
import pytest

from repro.flow.maxflow import FlowNetwork, max_flow
from repro.flow.mincost import MinCostFlowNetwork, min_cost_flow


class TestMaxFlowStress:
    @pytest.mark.parametrize("seed", range(3))
    def test_dense_graphs(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = 30
        net = FlowNetwork(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.25:
                    c = float(rng.uniform(0.01, 3.0))
                    if g.has_edge(u, v):
                        continue
                    net.add_edge(u, v, c)
                    g.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(g, 0, n - 1)
        assert max_flow(net, 0, n - 1) == pytest.approx(expected, abs=1e-6)

    def test_layered_network(self):
        """Deep layered graph: many Dinic phases."""
        layers, width = 12, 4
        n = layers * width + 2
        source, sink = n - 2, n - 1
        net = FlowNetwork(n)
        g = nx.DiGraph()
        rng = np.random.default_rng(5)
        for w in range(width):
            net.add_edge(source, w, 1.0)
            g.add_edge(source, w, capacity=1.0)
            last = (layers - 1) * width + w
            net.add_edge(last, sink, 1.0)
            g.add_edge(last, sink, capacity=1.0)
        for layer in range(layers - 1):
            for a in range(width):
                for b in range(width):
                    if rng.random() < 0.6:
                        u = layer * width + a
                        v = (layer + 1) * width + b
                        c = float(rng.uniform(0.1, 1.0))
                        net.add_edge(u, v, c)
                        g.add_edge(u, v, capacity=c)
        expected = nx.maximum_flow_value(g, source, sink)
        assert max_flow(net, source, sink) == pytest.approx(expected, abs=1e-6)

    def test_tiny_capacities_terminate(self):
        """Capacities spanning 12 orders of magnitude must not loop."""
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1e-10)
        net.add_edge(0, 2, 1e2)
        net.add_edge(1, 3, 1e2)
        net.add_edge(2, 3, 1e-10)
        assert max_flow(net, 0, 3) == pytest.approx(2e-10, rel=1e-6)


class TestMinCostStress:
    @pytest.mark.parametrize("seed", range(3))
    def test_transport_instances(self, seed):
        """EMD-shaped transport with large, noisy real costs (the exact
        pattern that exposed the epsilon cascade fixed in min_cost_flow)."""
        rng = np.random.default_rng(2000 + seed)
        m, k = 18, 9
        supplies = rng.dirichlet(np.ones(k))
        demands = rng.dirichlet(np.ones(m))
        costs = rng.uniform(500, 12000, size=(k, m))
        net = MinCostFlowNetwork(k + m + 2)
        source, sink = 0, k + m + 1
        g = nx.DiGraph()
        scale = 10**7  # integer-scaled copy for the networkx oracle
        for i in range(k):
            net.add_edge(source, 1 + i, float(supplies[i]), 0.0)
        for j in range(m):
            net.add_edge(1 + k + j, sink, float(demands[j]), 0.0)
        for i in range(k):
            for j in range(m):
                net.add_edge(1 + i, 1 + k + j, float("inf"), float(costs[i, j]))
        flow, cost = min_cost_flow(net, source, sink, max_value=1.0)
        assert flow == pytest.approx(1.0, abs=1e-6)
        # Oracle: scipy-style assignment is not applicable (unequal masses),
        # so verify against networkx min-cost flow on an integer-scaled copy.
        g.add_node("s", demand=-scale)
        g.add_node("t", demand=scale)
        for i in range(k):
            g.add_edge("s", f"u{i}", capacity=int(round(supplies[i] * scale)), weight=0)
        for j in range(m):
            g.add_edge(f"v{j}", "t", capacity=int(round(demands[j] * scale)), weight=0)
        # Rounding can starve a unit of supply; absorb slack via "s"->"t".
        g.add_edge("s", "t", capacity=scale, weight=int(costs.max()) * 10)
        for i in range(k):
            for j in range(m):
                g.add_edge(f"u{i}", f"v{j}", weight=int(round(costs[i, j])))
        flow_dict = nx.min_cost_flow(g)
        nx_cost = sum(
            flow_dict[f"u{i}"].get(f"v{j}", 0) * costs[i, j]
            for i in range(k)
            for j in range(m)
        ) / scale
        assert cost == pytest.approx(nx_cost, rel=5e-3)

    def test_repeated_solves_stable(self):
        """Build/solve loops must not accumulate state (fresh networks)."""
        values = set()
        for _ in range(5):
            net = MinCostFlowNetwork(4)
            net.add_edge(0, 1, 1.0, 2.0)
            net.add_edge(1, 3, 1.0, 2.0)
            net.add_edge(0, 2, 1.0, 3.0)
            net.add_edge(2, 3, 1.0, 3.0)
            values.add(min_cost_flow(net, 0, 3, max_value=1.0)[1])
        assert values == {4.0}
