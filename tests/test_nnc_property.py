"""Hypothesis-driven end-to-end property tests for Algorithm 1.

These fuzz the whole stack — random weighted objects on a coarse grid (so
distance ties are common) against the brute-force NNC definition — for each
operator, for k-skybands, and for the headline inclusion guarantees.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_force_nnc,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.core.nnc import NNCSearch, nn_candidates

from .conftest import uncertain_objects

BRUTES = {
    "SSD": brute_s_dominates,
    "SSSD": brute_ss_dominates,
    "PSD": brute_p_dominates,
    "FSD": brute_f_dominates,
}

small_scenes = st.tuples(
    st.lists(
        uncertain_objects(max_instances=3, coord_range=8.0),
        min_size=2,
        max_size=7,
    ),
    uncertain_objects(max_instances=3, coord_range=8.0, uniform_probs=True),
)


def _with_ids(objects):
    out = []
    for i, obj in enumerate(objects):
        obj.oid = i
        out.append(obj)
    return out


class TestAlgorithmOneFuzz:
    @given(small_scenes)
    @settings(max_examples=40, deadline=None)
    def test_every_operator_matches_bruteforce(self, scene):
        objects, query = scene
        objects = _with_ids(objects)
        search = NNCSearch(objects)
        for kind, brute in BRUTES.items():
            got = sorted(search.run(query, kind).oids())
            want = sorted(
                o.oid for o in brute_force_nnc(objects, query, brute)
            )
            assert got == want, kind

    @given(small_scenes, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_skyband_matches_bruteforce(self, scene, k):
        objects, query = scene
        objects = _with_ids(objects)
        got = sorted(nn_candidates(objects, query, "SSD", k=k).oids())
        want = sorted(
            v.oid
            for v in objects
            if sum(
                1
                for u in objects
                if u is not v and brute_s_dominates(u, v, query)
            )
            < k
        )
        assert got == want

    @given(small_scenes)
    @settings(max_examples=30, deadline=None)
    def test_candidate_nesting(self, scene):
        objects, query = scene
        objects = _with_ids(objects)
        search = NNCSearch(objects)
        sets = {
            kind: set(search.run(query, kind).oids()) for kind in BRUTES
        }
        assert sets["SSD"] <= sets["SSSD"] <= sets["PSD"] <= sets["FSD"]

    @given(small_scenes)
    @settings(max_examples=25, deadline=None)
    def test_nnc_never_empty(self, scene):
        objects, query = scene
        objects = _with_ids(objects)
        for kind in BRUTES:
            assert len(nn_candidates(objects, query, kind)) >= 1, kind
