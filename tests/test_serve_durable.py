"""Durable tier: WAL framing, snapshots, crash-exact warm restart."""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.metrics import MetricsRegistry
from repro.serve.audit import load_audit, replay_audit
from repro.serve.durable import (
    DurableDatasetManager,
    durable_epoch,
    latest_snapshot,
    load_snapshot,
    read_manifest,
    write_snapshot,
)
from repro.serve.updates import DatasetManager
from repro.serve.wal import (
    FsyncPolicy,
    WalCorruptionError,
    WriteAheadLog,
    encode_frame,
    read_wal,
)

OPERATORS = ("SSD", "SSSD", "PSD", "FSD")


def _dataset(n: int = 30, seed: int = 7):
    rng = np.random.default_rng(seed)
    centers = synthetic.independent_centers(n, 2, rng)
    return synthetic.make_objects(centers, 4, 40.0, rng)


def _query(seed: int = 1):
    rng = np.random.default_rng(seed)
    return synthetic.make_query(np.array([50.0, 50.0]), 3, 20.0, rng, oid="Q")


# --------------------------------------------------------------------- #
# WAL framing
# --------------------------------------------------------------------- #


class TestWal:
    def test_roundtrip_with_sequence_numbers(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="never")
        for i in range(5):
            assert wal.append({"kind": "insert", "epoch": i + 1}) == i
        wal.close()
        records, torn = read_wal(tmp_path / "wal.log")
        assert torn is None
        assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]
        assert [r["epoch"] for r in records] == [1, 2, 3, 4, 5]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_wal(tmp_path / "absent.log") == ([], None)

    def test_torn_tail_at_every_truncation_offset(self, tmp_path):
        frames = [encode_frame({"seq": i, "epoch": i + 1}) for i in range(3)]
        raw = b"".join(frames)
        keep = len(frames[0]) + len(frames[1])
        for cut in range(keep, len(raw) + 1):
            path = tmp_path / "wal.log"
            path.write_bytes(raw[:cut])
            records, torn = read_wal(path)
            if cut == keep:
                assert len(records) == 2 and torn is None
            elif cut == len(raw):
                assert len(records) == 3 and torn is None
            else:
                # Any mid-frame cut: durable prefix intact, tear located.
                assert len(records) == 2
                assert torn is not None and torn.offset == keep
                assert torn.kind == "wal"

    def test_mid_file_corruption_refuses_to_replay(self, tmp_path):
        frames = [encode_frame({"seq": i, "epoch": i + 1}) for i in range(3)]
        raw = bytearray(b"".join(frames))
        # Flip a payload byte of the *first* frame: valid frames follow.
        raw[10] ^= 0xFF
        path = tmp_path / "wal.log"
        path.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError):
            read_wal(path)

    def test_garbage_length_prefix_at_tail_is_torn(self, tmp_path):
        frame = encode_frame({"seq": 0, "epoch": 1})
        path = tmp_path / "wal.log"
        path.write_bytes(frame + struct.pack("<II", 2**31, 0) + b"xx")
        records, torn = read_wal(path)
        assert len(records) == 1
        assert torn is not None and "cap" in torn.detail

    def test_crc_mismatch_at_tail_is_torn(self, tmp_path):
        good = encode_frame({"seq": 0, "epoch": 1})
        payload = json.dumps({"seq": 1}).encode()
        bad = struct.pack("<II", len(payload), zlib.crc32(payload) ^ 1)
        path = tmp_path / "wal.log"
        path.write_bytes(good + bad + payload)
        records, torn = read_wal(path)
        assert len(records) == 1
        assert torn is not None and "CRC" in torn.detail

    def test_fsync_policy_modes(self):
        assert FsyncPolicy("always").due()
        assert not FsyncPolicy("never").due()
        interval = FsyncPolicy("interval", interval_s=3600.0)
        interval._last_sync = 0.0
        assert interval.due()  # first call past the interval
        assert not interval.due()  # just synced
        with pytest.raises(ValueError):
            FsyncPolicy("sometimes")

    def test_kill_injection_tears_the_frame(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_KILL_AT_APPEND", "2")

        class Killed(RuntimeError):
            pass

        def fake_kill():
            raise Killed()

        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync="never", kill_hook=fake_kill
        )
        wal.append({"kind": "insert", "epoch": 1})
        with pytest.raises(Killed):
            wal.append({"kind": "insert", "epoch": 2})
        wal.close()
        records, torn = read_wal(tmp_path / "wal.log")
        assert [r["epoch"] for r in records] == [1]
        assert torn is not None  # the half-written second frame

    def test_reset_truncates_but_seq_continues(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync="never")
        wal.append({"kind": "insert", "epoch": 1})
        wal.reset()
        assert (tmp_path / "wal.log").stat().st_size == 0
        assert wal.append({"kind": "insert", "epoch": 2}) == 1
        wal.close()

    def test_wal_metrics(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(
            tmp_path / "wal.log", fsync="always", metrics=registry
        )
        wal.append({"kind": "insert", "epoch": 1})
        wal.close()
        assert registry.value("repro_wal_appends_total") == 1.0


# --------------------------------------------------------------------- #
# Snapshot files
# --------------------------------------------------------------------- #


class TestSnapshot:
    def test_roundtrip_preserves_objects_and_epoch(self, tmp_path):
        m = DatasetManager(_dataset(20), shards=2, backend="serial")
        try:
            path = write_snapshot(
                tmp_path, m.search.searches, epoch=7, wal_seq=3
            )
            assert path.name == f"snap-{7:016d}.snap"
            snap = load_snapshot(path)
            assert snap.manifest["epoch"] == 7
            assert snap.manifest["wal_seq"] == 3
            assert len(snap.searches) == 2
            live = sorted(
                o.oid for s in snap.searches for o in s.live_objects()
            )
            assert live == sorted(o.oid for _, o in m._registry.values())
            # Zero-copy views over the map must be read-only.
            for s in snap.searches:
                for o in s.live_objects():
                    assert not o.points.flags.writeable
            assert snap.warm() > 0
        finally:
            m.close()

    def test_read_manifest_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "snap-0000000000000001.snap"
        path.write_bytes(b"not a snapshot")
        with pytest.raises(ValueError):
            read_manifest(path)
        with pytest.raises(ValueError):
            load_snapshot(path)

    def test_latest_snapshot_skips_corrupt_newest(self, tmp_path):
        m = DatasetManager(_dataset(8), backend="serial")
        try:
            old = write_snapshot(tmp_path, m.search.searches, epoch=1, wal_seq=0)
            new = write_snapshot(tmp_path, m.search.searches, epoch=2, wal_seq=0)
            new.write_bytes(b"disk ate this one")
            (tmp_path / "snap-x.snap.tmp").write_bytes(b"stale tmp")
            assert latest_snapshot(tmp_path) == old
            assert not (tmp_path / "snap-x.snap.tmp").exists()
        finally:
            m.close()

    def test_corrupt_blob_crc_detected(self, tmp_path):
        m = DatasetManager(_dataset(8), backend="serial")
        try:
            path = write_snapshot(tmp_path, m.search.searches, epoch=1, wal_seq=0)
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF  # flip a byte inside the last shard blob
            path.write_bytes(bytes(raw))
            with pytest.raises(ValueError, match="CRC"):
                load_snapshot(path)
        finally:
            m.close()


# --------------------------------------------------------------------- #
# Durable manager: restart exactness
# --------------------------------------------------------------------- #


class TestDurableManager:
    def test_warm_restart_recovers_exact_epoch_and_answers(self, tmp_path):
        objects = _dataset(24)
        query = _query()
        m = DurableDatasetManager(
            objects, data_dir=tmp_path, shards=2, backend="serial",
            snapshot_every=5,
        )
        oid, _ = m.insert([[50.0, 50.0], [51.0, 51.0]])
        m.delete(objects[3].oid)
        m.delete(objects[4].oid)
        expected = {
            op: sorted(
                o.oid for o in m.query(query, op, k=2)[0].candidates
            )
            for op in OPERATORS
        }
        epoch = m.epoch
        m.close()

        assert durable_epoch(tmp_path) == (epoch, None)
        warm = DurableDatasetManager(
            [], data_dir=tmp_path, shards=2, backend="serial",
            snapshot_every=5,
        )
        try:
            assert warm.epoch == epoch
            assert warm.recovery.source == "snapshot"
            # Bit-identical answers from the memory-mapped shards, across
            # all four operators (the ISSUE's memmap correctness pin).
            for op in OPERATORS:
                got = sorted(
                    o.oid for o in warm.query(query, op, k=2)[0].candidates
                )
                assert got == expected[op], op
        finally:
            warm.close()

    def test_cold_start_checkpoints_immediately(self, tmp_path):
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial"
        )
        try:
            assert m.recovery.source == "cold"
            assert latest_snapshot(tmp_path) is not None
        finally:
            m.close()

    def test_snapshot_every_truncates_wal(self, tmp_path):
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial",
            snapshot_every=2,
        )
        try:
            m.insert([[1.0, 1.0]], oid="a")
            m.insert([[2.0, 2.0]], oid="b")  # second mutation: checkpoint
            assert (tmp_path / "wal.log").stat().st_size == 0
            snap = latest_snapshot(tmp_path)
            assert read_manifest(snap)["epoch"] == 2
            m.insert([[3.0, 3.0]], oid="c")  # lands in the fresh WAL
            records, torn = read_wal(tmp_path / "wal.log")
            assert torn is None and len(records) == 1
            assert records[0]["epoch"] == 3
        finally:
            m.close()

    def test_wal_replay_past_snapshot(self, tmp_path):
        # Mutations after the last checkpoint live only in the WAL; close
        # WITHOUT the final snapshot (simulated kill) and recover.
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial",
            snapshot_every=0,
        )
        m.insert([[1.0, 1.0]], oid="a")
        m.insert([[2.0, 2.0]], oid="b")
        epoch = m.epoch
        m.wal.close()
        DatasetManager.close(m)  # skip the durable close's checkpoint

        warm = DurableDatasetManager(
            [], data_dir=tmp_path, backend="serial", snapshot_every=0
        )
        try:
            assert warm.epoch == epoch
            assert warm.recovery.wal_frames_replayed == 2
            assert warm.get("a") is not None and warm.get("b") is not None
        finally:
            warm.close()

    def test_stale_wal_after_snapshot_rename_is_skipped(self, tmp_path):
        # A kill between snapshot rename and WAL truncate leaves frames the
        # snapshot already covers; recovery must skip them, not re-apply.
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial",
            snapshot_every=0,
        )
        m.insert([[1.0, 1.0]], oid="a")
        epoch = m.epoch
        m.close()  # checkpoint covers the insert; WAL truncated
        # Recreate the pre-truncate WAL by hand.
        frame = encode_frame({
            "seq": 0, "kind": "insert", "epoch": epoch, "oid": "a",
            "points": [[1.0, 1.0]], "probs": [1.0],
        })
        (tmp_path / "wal.log").write_bytes(frame)

        warm = DurableDatasetManager(
            [], data_dir=tmp_path, backend="serial", snapshot_every=0
        )
        try:
            assert warm.epoch == epoch
            assert warm.recovery.wal_frames_replayed == 0
        finally:
            warm.close()

    def test_torn_wal_tail_flagged_not_dropped_silently(self, tmp_path):
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial",
            snapshot_every=0,
        )
        m.insert([[1.0, 1.0]], oid="a")
        epoch = m.epoch
        m.wal.close()
        DatasetManager.close(m)
        # A half-written frame at the tail (crashed append).
        extra = encode_frame({"seq": 9, "kind": "insert", "epoch": epoch + 1})
        with (tmp_path / "wal.log").open("ab") as fh:
            fh.write(extra[: len(extra) // 2])

        ground_epoch, tail = durable_epoch(tmp_path)
        assert ground_epoch == epoch and tail is not None
        warm = DurableDatasetManager(
            [], data_dir=tmp_path, backend="serial", snapshot_every=0
        )
        try:
            assert warm.epoch == epoch
            assert warm.recovery.wal_torn is not None
            assert warm.recovery.wal_torn["kind"] == "wal"
        finally:
            warm.close()

    def test_repartitioned_restart_same_epoch_same_answers(self, tmp_path):
        query = _query()
        m = DurableDatasetManager(
            _dataset(16), data_dir=tmp_path, shards=2, backend="serial"
        )
        m.insert([[50.0, 50.0]], oid="x")
        expected = sorted(
            str(o.oid) for o in m.query(query, "FSD", k=2)[0].candidates
        )
        epoch = m.epoch
        m.close()

        warm = DurableDatasetManager(
            [], data_dir=tmp_path, shards=3, backend="serial"
        )
        try:
            assert warm.recovery.repartitioned
            assert warm.epoch == epoch
            got = sorted(
                str(o.oid)
                for o in warm.query(query, "FSD", k=2)[0].candidates
            )
            assert got == expected
        finally:
            warm.close()

    def test_mutations_after_restart_keep_working(self, tmp_path):
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial"
        )
        m.insert([[1.0, 1.0]], oid="a")
        m.close()
        warm = DurableDatasetManager(
            [], data_dir=tmp_path, backend="serial"
        )
        try:
            base = warm.epoch
            warm.insert([[2.0, 2.0]], oid="b")
            warm.delete("a")
            assert warm.epoch == base + 2
        finally:
            warm.close()
        again = DurableDatasetManager(
            [], data_dir=tmp_path, backend="serial"
        )
        try:
            assert again.get("b") is not None and again.get("a") is None
        finally:
            again.close()

    def test_recovery_metrics_and_status(self, tmp_path):
        registry = MetricsRegistry()
        m = DurableDatasetManager(
            _dataset(10), data_dir=tmp_path, backend="serial",
            metrics=registry,
        )
        try:
            status = m.durability_status()
            assert status["data_dir"] == str(tmp_path)
            assert status["fsync"] == "always"
            assert status["recovery"]["source"] == "cold"
            assert registry.total("repro_snapshots_total") >= 1.0
        finally:
            m.close()


# --------------------------------------------------------------------- #
# Audit: torn tail + two-log reconciliation
# --------------------------------------------------------------------- #


class TestAuditCrash:
    def _audit_rows(self, path, rows):
        with path.open("w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row) + "\n")

    def test_load_audit_flags_torn_final_line(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        self._audit_rows(
            path,
            [{"kind": "query", "seq": 0, "epoch": 0, "degraded": True}],
        )
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "query", "seq": 1, "ep')  # crashed append
        records = load_audit(path)
        assert len(records) == 1
        assert records.torn_tail is not None
        assert records.torn_tail.kind == "audit"
        report = replay_audit(records, _dataset(4))
        assert report.ok and report.torn_tail is not None

    def test_load_audit_rejects_mid_file_damage(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"kind": "que\n{"kind": "query", "seq": 1}\n')
        with pytest.raises(ValueError, match="mid-file"):
            load_audit(path)

    def test_unterminated_final_line_is_torn_even_if_valid_json(
        self, tmp_path
    ):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"kind": "query", "seq": 0, "epoch": 0}')  # no \n
        records = load_audit(path)
        assert len(records) == 0
        assert records.torn_tail is not None

    def test_recovery_reconciles_audit_with_wal(self, tmp_path):
        data_dir = tmp_path / "data"
        audit_path = tmp_path / "audit.jsonl"
        objects = _dataset(8)
        m = DurableDatasetManager(
            objects, data_dir=data_dir, backend="serial", snapshot_every=0,
        )
        m.insert([[1.0, 1.0], [2.0, 2.0]], oid="lost")
        m.wal.close()
        DatasetManager.close(m)
        # The crash window: WAL has the insert, the audit log never saw it,
        # and the audit's own tail is torn mid-line.
        self._audit_rows(audit_path, [])
        with audit_path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "query", "seq"')

        warm = DurableDatasetManager(
            [], data_dir=data_dir, backend="serial", snapshot_every=0,
            audit_path=audit_path,
        )
        try:
            assert warm.recovery.audit_torn is not None
            assert warm.recovery.audit_reconciled == 1
        finally:
            warm.close()
        records = load_audit(audit_path)
        assert records.torn_tail is None  # tail repaired on disk
        recovered = [r for r in records if r.get("recovered")]
        assert len(recovered) == 1 and recovered[0]["oid"] == "lost"
        report = replay_audit(records, objects)
        assert report.ok and report.mutations_applied == 1


# --------------------------------------------------------------------- #
# Serving while recovering
# --------------------------------------------------------------------- #


class TestRecoveringServer:
    def test_engine_routes_503_until_recovered(self, tmp_path):
        from repro.serve.server import ServeApp

        m = DurableDatasetManager(
            _dataset(8), data_dir=tmp_path, backend="serial",
            defer_recovery=True,
        )
        app = ServeApp(m)
        try:
            app.recovering = True
            assert app.healthz()["status"] == "recovering"
            status, body = app.handle(
                "POST", "/query",
                {"points": [[1.0, 1.0], [2.0, 2.0]], "operator": "FSD"},
            )
            assert status == 503
            assert body["retryable"] and body["recovering"]
            m.recover()
            app.recovering = False
            status, body = app.handle(
                "POST", "/query",
                {"points": [[1.0, 1.0], [2.0, 2.0]], "operator": "FSD"},
            )
            assert status == 200
        finally:
            m.close()

    def test_status_surfaces_durability_fields(self, tmp_path):
        from repro.serve.server import ServeApp

        m = DurableDatasetManager(
            _dataset(8), data_dir=tmp_path, backend="serial"
        )
        app = ServeApp(m)
        try:
            body = app.status()
            assert body["durability"]["fsync"] == "always"
            assert body["wal_seq"] == 0
            assert body["last_snapshot_epoch"] == 0
            assert body["recovery"]["source"] == "cold"
        finally:
            m.close()

    def test_plain_manager_status_has_no_durability(self):
        from repro.serve.server import ServeApp

        m = DatasetManager(_dataset(8), backend="serial")
        app = ServeApp(m)
        try:
            assert "durability" not in app.status()
        finally:
            m.close()
