"""Tests for QueryContext caching and configuration."""

import numpy as np
import pytest

from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.objects.uncertain import UncertainObject

from .conftest import random_object


class TestCaching:
    def test_distance_distribution_cached(self, rng):
        query = random_object(rng, oid="Q")
        obj = random_object(rng, oid=0)
        ctx = QueryContext(query)
        assert ctx.distance_distribution(obj) is ctx.distance_distribution(obj)

    def test_per_instance_cached(self, rng):
        query = random_object(rng, m=3, oid="Q")
        obj = random_object(rng, oid=0)
        ctx = QueryContext(query)
        first = ctx.per_instance_distributions(obj)
        assert first is ctx.per_instance_distributions(obj)
        assert len(first) == len(query)

    def test_statistics_match_distribution(self, rng):
        query = random_object(rng, oid="Q")
        obj = random_object(rng, oid=0)
        ctx = QueryContext(query)
        lo, mean, hi = ctx.statistics(obj)
        dist = ctx.distance_distribution(obj)
        assert lo == pytest.approx(dist.min())
        assert mean == pytest.approx(dist.mean())
        assert hi == pytest.approx(dist.max())

    def test_forget_clears_cache(self, rng):
        query = random_object(rng, oid="Q")
        obj = random_object(rng, oid=0)
        ctx = QueryContext(query)
        first = ctx.distance_distribution(obj)
        ctx.forget(obj)
        assert ctx.distance_distribution(obj) is not first

    def test_partitions_cover_instances(self, rng):
        query = random_object(rng, oid="Q")
        obj = random_object(rng, m=12, oid=0)
        ctx = QueryContext(query, level_groups=4)
        parts = ctx.partitions(obj)
        all_idx = sorted(i for _, idx, _ in parts for i in idx)
        assert all_idx == list(range(12))
        total = sum(mass for _, _, mass in parts)
        assert total == pytest.approx(1.0)

    def test_hull_vectors_shape(self, rng):
        query = random_object(rng, m=6, oid="Q")
        obj = random_object(rng, m=4, oid=0)
        ctx = QueryContext(query)
        vecs = ctx.hull_distance_vectors(obj)
        assert vecs.shape == (4, len(ctx.hull_points))


class TestConfiguration:
    def test_hull_disabled_keeps_all_points(self, rng):
        pts = np.vstack([rng.uniform(0, 10, size=(6, 2)), [[5.0, 5.0]]])
        query = UncertainObject(pts, oid="Q")
        with_hull = QueryContext(query, use_hull=True)
        without = QueryContext(query, use_hull=False)
        assert without.hull_points.shape[0] == len(query)
        assert with_hull.hull_points.shape[0] <= len(query)

    def test_small_queries_skip_hull(self, rng):
        query = random_object(rng, m=2, oid="Q")
        ctx = QueryContext(query, use_hull=True)
        assert ctx.hull_points.shape[0] == 2

    def test_counters_injected_or_created(self, rng):
        query = random_object(rng, oid="Q")
        own = Counters()
        assert QueryContext(query, counters=own).counters is own
        assert isinstance(QueryContext(query).counters, Counters)


class TestCounters:
    def test_merge_and_snapshot(self):
        a = Counters(instance_comparisons=3, dominance_checks=1)
        a.bump("objects_dominated", 2)
        b = Counters(instance_comparisons=4, maxflow_calls=2)
        b.bump("objects_dominated")
        a.merge(b)
        snap = a.snapshot()
        assert snap["instance_comparisons"] == 7
        assert snap["dominance_checks"] == 1
        assert snap["maxflow_calls"] == 2
        assert snap["objects_dominated"] == 3

    def test_count_comparisons(self):
        c = Counters()
        c.count_comparisons(5)
        c.count_comparisons(2)
        assert c.instance_comparisons == 7
