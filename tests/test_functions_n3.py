"""Tests for the N3 family: Hausdorff, SumMin, EMD / Netflow."""

import itertools

import numpy as np
import pytest

from repro.functions.n3 import (
    earth_movers_distance,
    hausdorff_distance,
    netflow_distance,
    sum_of_min_distances,
)
from repro.objects.uncertain import UncertainObject

from .conftest import random_object


def _emd_bruteforce_uniform(obj, query):
    """Optimal transport between equal-size uniform objects by permutation."""
    m = len(obj)
    assert len(query) == m
    dists = np.linalg.norm(
        query.points[:, None, :] - obj.points[None, :, :], axis=2
    )
    best = np.inf
    for perm in itertools.permutations(range(m)):
        cost = sum(dists[i, perm[i]] for i in range(m)) / m
        best = min(best, cost)
    return best


class TestHausdorff:
    def test_identical_objects_zero(self, rng):
        obj = random_object(rng, m=4)
        same = UncertainObject(obj.points, obj.probs)
        assert hausdorff_distance(obj, same) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a = random_object(rng, m=4)
        b = random_object(rng, m=3)
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_known_value(self):
        a = UncertainObject([[0.0], [1.0]])
        q = UncertainObject([[0.0], [5.0]])
        # max(min dists): a-side max(0, 4->? ) a1->0, a2->1; q-side q2->4.
        assert hausdorff_distance(a, q) == pytest.approx(4.0)

    def test_triangle_inequality(self, rng):
        a, b, c = (random_object(rng, m=3) for _ in range(3))
        assert hausdorff_distance(a, c) <= (
            hausdorff_distance(a, b) + hausdorff_distance(b, c) + 1e-9
        )

    def test_upper_bounds_summin(self, rng):
        a = random_object(rng, m=4)
        q = random_object(rng, m=4)
        assert sum_of_min_distances(a, q) <= hausdorff_distance(a, q) + 1e-9


class TestSumOfMinDistances:
    def test_identical_zero(self, rng):
        obj = random_object(rng, m=5)
        assert sum_of_min_distances(obj, obj) == pytest.approx(0.0)

    def test_known_value(self):
        a = UncertainObject([[0.0], [2.0]])
        q = UncertainObject([[0.0], [4.0]])
        # a-side: (0 + 2)/2 weighted .5 each -> 1.0; q-side: (0 + 2)/2 -> 1.0.
        assert sum_of_min_distances(a, q) == pytest.approx(1.0)

    def test_nonnegative(self, rng):
        a = random_object(rng, m=3)
        q = random_object(rng, m=4)
        assert sum_of_min_distances(a, q) >= 0.0


class TestEMD:
    def test_identical_zero(self, rng):
        obj = random_object(rng, m=4)
        assert earth_movers_distance(obj, obj) == pytest.approx(0.0, abs=1e-9)

    def test_point_masses(self):
        a = UncertainObject([[0.0, 0.0]])
        q = UncertainObject([[3.0, 4.0]])
        assert earth_movers_distance(a, q) == pytest.approx(5.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_permutation_bruteforce(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 5))
        obj = UncertainObject(rng.uniform(0, 10, size=(m, 2)))
        query = UncertainObject(rng.uniform(0, 10, size=(m, 2)))
        assert earth_movers_distance(obj, query) == pytest.approx(
            _emd_bruteforce_uniform(obj, query), abs=1e-6
        )

    def test_unequal_sizes_and_masses(self):
        # Mass 1 split 0.5/0.5 against a single query point at distance 1, 3.
        obj = UncertainObject([[1.0], [3.0]], [0.5, 0.5])
        query = UncertainObject([[0.0]])
        assert earth_movers_distance(obj, query) == pytest.approx(2.0)

    def test_paper_figure4_values(self):
        from repro.datasets.paper_examples import figure4

        scene = figure4()
        assert earth_movers_distance(scene["A"], scene.query) == pytest.approx(
            4.0, abs=1e-6
        )
        assert earth_movers_distance(scene["B"], scene.query) == pytest.approx(
            3.75, abs=1e-6
        )

    def test_symmetry(self, rng):
        a = random_object(rng, m=3)
        b = random_object(rng, m=4)
        assert earth_movers_distance(a, b) == pytest.approx(
            earth_movers_distance(b, a), abs=1e-6
        )

    def test_triangle_inequality(self, rng):
        a, b, c = (random_object(rng, m=3) for _ in range(3))
        assert earth_movers_distance(a, c) <= (
            earth_movers_distance(a, b) + earth_movers_distance(b, c) + 1e-6
        )

    def test_netflow_alias(self, rng):
        a = random_object(rng, m=3)
        q = random_object(rng, m=2)
        assert netflow_distance(a, q) == pytest.approx(
            earth_movers_distance(a, q)
        )
