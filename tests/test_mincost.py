"""Tests for the min-cost max-flow solver (EMD backbone)."""

import networkx as nx
import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.flow.mincost import MinCostFlowNetwork, min_cost_flow


class TestBasics:
    def test_single_path_cost(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 2.0, 1.5)
        net.add_edge(1, 2, 2.0, 0.5)
        flow, cost = min_cost_flow(net, 0, 2)
        assert flow == pytest.approx(2.0)
        assert cost == pytest.approx(2.0 * 2.0)

    def test_prefers_cheap_path(self):
        net = MinCostFlowNetwork(4)
        net.add_edge(0, 1, 1.0, 10.0)
        net.add_edge(1, 3, 1.0, 10.0)
        net.add_edge(0, 2, 1.0, 1.0)
        net.add_edge(2, 3, 1.0, 1.0)
        flow, cost = min_cost_flow(net, 0, 3, max_value=1.0)
        assert flow == pytest.approx(1.0)
        assert cost == pytest.approx(2.0)

    def test_max_value_cap(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 5.0, 1.0)
        flow, cost = min_cost_flow(net, 0, 1, max_value=2.5)
        assert flow == pytest.approx(2.5)
        assert cost == pytest.approx(2.5)

    def test_disconnected(self):
        net = MinCostFlowNetwork(3)
        net.add_edge(0, 1, 1.0, 1.0)
        flow, cost = min_cost_flow(net, 0, 2)
        assert flow == 0.0
        assert cost == 0.0

    def test_negative_cost_rejected(self):
        net = MinCostFlowNetwork(2)
        net.add_edge(0, 1, 1.0, -2.0)
        with pytest.raises(ValueError, match="non-negative"):
            min_cost_flow(net, 0, 1)


class TestAgainstAssignment:
    """Balanced unit assignment == min-cost perfect matching (Hungarian)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_hungarian(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        costs = rng.uniform(0, 10, size=(n, n))
        net = MinCostFlowNetwork(2 * n + 2)
        source, sink = 0, 2 * n + 1
        for i in range(n):
            net.add_edge(source, 1 + i, 1.0, 0.0)
            net.add_edge(1 + n + i, sink, 1.0, 0.0)
        for i in range(n):
            for j in range(n):
                net.add_edge(1 + i, 1 + n + j, float("inf"), float(costs[i, j]))
        flow, cost = min_cost_flow(net, source, sink)
        rows, cols = linear_sum_assignment(costs)
        assert flow == pytest.approx(float(n))
        assert cost == pytest.approx(float(costs[rows, cols].sum()), abs=1e-6)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_integer_instances(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = int(rng.integers(4, 9))
        net = MinCostFlowNetwork(n)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for u in range(n):
            for v in range(n):
                if u != v and rng.random() < 0.45:
                    cap = int(rng.integers(1, 5))
                    cost = int(rng.integers(0, 8))
                    net.add_edge(u, v, float(cap), float(cost))
                    if g.has_edge(u, v):
                        continue
                    g.add_edge(u, v, capacity=cap, weight=cost)
        # Rebuild our net to skip parallel edges too (match the nx graph).
        net = MinCostFlowNetwork(n)
        for u, v, data in g.edges(data=True):
            net.add_edge(u, v, float(data["capacity"]), float(data["weight"]))
        source, sink = 0, n - 1
        expected_flow = nx.maximum_flow_value(g, source, sink)
        expected_cost = nx.cost_of_flow(
            g, nx.max_flow_min_cost(g, source, sink)
        )
        flow, cost = min_cost_flow(net, source, sink)
        assert flow == pytest.approx(expected_flow, abs=1e-6)
        assert cost == pytest.approx(expected_cost, abs=1e-6)
