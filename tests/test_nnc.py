"""Integration tests: Algorithm 1 against the brute-force NNC definition."""

import numpy as np
import pytest

from repro.core.bruteforce import (
    brute_f_dominates,
    brute_force_nnc,
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch, nn_candidates
from repro.objects.uncertain import UncertainObject

from .conftest import random_object, random_scene

BRUTES = {
    "SSD": brute_s_dominates,
    "SSSD": brute_ss_dominates,
    "PSD": brute_p_dominates,
    "FSD": brute_f_dominates,
}


def _assert_matches_bruteforce(objects, query, kind):
    result = nn_candidates(objects, query, kind)
    expected = brute_force_nnc(objects, query, BRUTES[kind])
    assert sorted(result.oids()) == sorted(o.oid for o in expected), kind


class TestAgainstBruteForce:
    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_scenes(self, kind, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=25, m=4, m_q=3)
        _assert_matches_bruteforce(objects, query, kind)

    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    def test_weighted_instances(self, kind, rng):
        objects, query = random_scene(
            rng, n_objects=18, m=4, m_q=3, uniform_probs=False
        )
        _assert_matches_bruteforce(objects, query, kind)

    @pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD"])
    def test_gridded_coordinates_with_ties(self, kind, rng):
        # Integer grid coordinates produce many exact distance ties.
        objects = [
            UncertainObject(
                rng.integers(0, 8, size=(3, 2)).astype(float), oid=i
            )
            for i in range(20)
        ]
        query = UncertainObject(
            rng.integers(0, 8, size=(2, 2)).astype(float), oid="Q"
        )
        _assert_matches_bruteforce(objects, query, kind)

    def test_duplicate_objects_both_kept(self, rng):
        objects, query = random_scene(rng, n_objects=6, m=3, m_q=2)
        clone = UncertainObject(objects[0].points, objects[0].probs, oid="clone")
        objects = objects + [clone]
        for kind in ["SSD", "SSSD", "PSD", "FSD"]:
            result = nn_candidates(objects, query, kind)
            oids = set(result.oids())
            # Identical objects never dominate each other, so either both or
            # neither are candidates.
            assert (objects[0].oid in oids) == ("clone" in oids), kind
            _assert_matches_bruteforce(objects, query, kind)

    def test_single_object(self, rng):
        obj = random_object(rng, oid=0)
        query = random_object(rng, oid="Q")
        for kind in ["SSD", "SSSD", "PSD", "FSD", "F+SD"]:
            assert nn_candidates([obj], query, kind).oids() == [0]

    def test_three_dims(self, rng):
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=3, dim=3)
        for kind in ["SSD", "SSSD", "PSD"]:
            _assert_matches_bruteforce(objects, query, kind)


class TestCandidateSetNesting:
    """NNC(S-SD) ⊆ NNC(SS-SD) ⊆ NNC(P-SD) ⊆ NNC(F-SD) (Figure 5)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_nesting(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=30, m=4, m_q=3)
        search = NNCSearch(objects)
        sets = {
            kind: set(search.run(query, kind).oids())
            for kind in ["SSD", "SSSD", "PSD", "FSD"]
        }
        assert sets["SSD"] <= sets["SSSD"] <= sets["PSD"] <= sets["FSD"]

    def test_all_operators_keep_min_winner(self, rng):
        """The object with the overall smallest pair distance always stays."""
        objects, query = random_scene(rng, n_objects=20, m=4, m_q=3)
        best = min(objects, key=lambda o: o.min_distance(query))
        for kind in ["SSD", "SSSD", "PSD", "FSD"]:
            assert best.oid in nn_candidates(objects, query, kind).oids()


class TestProgressiveStream:
    def test_stream_equals_batch(self, rng):
        objects, query = random_scene(rng, n_objects=25, m=4, m_q=3)
        search = NNCSearch(objects)
        streamed = [obj.oid for obj in search.stream(query, "SSSD")]
        batch = search.run(query, "SSSD").oids()
        assert streamed == batch

    def test_stream_is_lazy_prefix(self, rng):
        """Taking a prefix of the stream yields genuine candidates only."""
        objects, query = random_scene(rng, n_objects=30, m=4, m_q=3)
        search = NNCSearch(objects)
        full = set(search.run(query, "PSD").oids())
        gen = search.stream(query, "PSD")
        prefix = [next(gen).oid for _ in range(min(3, len(full)))]
        assert set(prefix) <= full

    def test_yield_times_nondecreasing(self, rng):
        objects, query = random_scene(rng, n_objects=25, m=4, m_q=3)
        result = NNCSearch(objects).run(query, "SSD")
        assert result.yield_times == sorted(result.yield_times)
        assert len(result.yield_times) == len(result)


class TestSearchReuse:
    def test_multiple_queries_one_index(self, rng):
        objects, _ = random_scene(rng, n_objects=20, m=3, m_q=2)
        search = NNCSearch(objects)
        for _ in range(3):
            query = random_object(rng, m=3, oid="Q")
            _ = search.run(query, "SSD")
            expected = brute_force_nnc(objects, query, brute_s_dominates)
            assert sorted(search.run(query, "SSD").oids()) == sorted(
                o.oid for o in expected
            )

    def test_counters_populated(self, rng):
        objects, query = random_scene(rng, n_objects=20, m=3, m_q=2)
        ctx = QueryContext(query)
        result = NNCSearch(objects).run(query, "SSD", ctx=ctx)
        assert result.counters is ctx.counters
        assert ctx.counters.objects_visited > 0
        assert ctx.counters.dominance_checks > 0

    def test_operator_instance_accepted(self, rng):
        from repro.core.operators import make_operator

        objects, query = random_scene(rng, n_objects=10, m=3, m_q=2)
        op = make_operator("SSD", use_level=True)
        result = NNCSearch(objects).run(query, op)
        expected = brute_force_nnc(objects, query, brute_s_dominates)
        assert sorted(result.oids()) == sorted(o.oid for o in expected)


class TestDynamicInsertion:
    def test_add_object_visible_to_search(self, rng):
        objects, query = random_scene(rng, n_objects=12, m=3, m_q=2)
        search = NNCSearch(objects[:-1])
        before = sorted(search.run(query, "SSD").oids())
        search.add_object(objects[-1])
        after = sorted(search.run(query, "SSD").oids())
        expected = brute_force_nnc(objects, query, brute_s_dominates)
        assert after == sorted(o.oid for o in expected)
        # Inserting an object can only change the result via dominance.
        assert set(after) - set(before) <= {objects[-1].oid}

    def test_incremental_build_equals_batch(self, rng):
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        search = NNCSearch(objects[:5])
        for obj in objects[5:]:
            search.add_object(obj)
        batch = NNCSearch(objects)
        assert sorted(search.run(query, "PSD").oids()) == sorted(
            batch.run(query, "PSD").oids()
        )


class TestDynamicRemoval:
    def test_remove_object(self, rng):
        objects, query = random_scene(rng, n_objects=14, m=3, m_q=2)
        search = NNCSearch(objects)
        victim = objects[3]
        assert search.remove_object(victim)
        assert not search.remove_object(victim)
        rest = [o for o in objects if o is not victim]
        expected = brute_force_nnc(rest, query, brute_s_dominates)
        assert sorted(search.run(query, "SSD").oids()) == sorted(
            o.oid for o in expected
        )

    def test_churn(self, rng):
        objects, query = random_scene(rng, n_objects=20, m=3, m_q=2)
        search = NNCSearch(objects[:10])
        for obj in objects[10:]:
            search.add_object(obj)
        for obj in objects[:5]:
            assert search.remove_object(obj)
        live = objects[5:]
        expected = brute_force_nnc(live, query, brute_s_dominates)
        assert sorted(search.run(query, "SSD").oids()) == sorted(
            o.oid for o in expected
        )
