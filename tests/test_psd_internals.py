"""Tests for P-SD internals: network construction, level networks, geometry."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_p_dominates
from repro.core.context import QueryContext
from repro.core.psd import build_psd_network, p_dominates, point_in_query_hull
from repro.flow.maxflow import max_flow
from repro.objects.uncertain import UncertainObject

from .conftest import random_object, random_scene


class TestNetworkConstruction:
    def test_capacities_from_probabilities(self):
        q = UncertainObject([[0.0]], oid="Q")
        u = UncertainObject([[1.0], [2.0]], [0.3, 0.7], oid="U")
        v = UncertainObject([[5.0]], oid="V")
        ctx = QueryContext(q)
        net, source, sink, adj = build_psd_network(u, v, ctx)
        assert adj.all()
        # Source edges carry u's probabilities.
        caps = sorted(edge[1] for edge in net.graph[source])
        assert caps == pytest.approx([0.3, 0.7])
        assert max_flow(net, source, sink) == pytest.approx(1.0)

    def test_adjacency_matches_pairwise_check(self, rng):
        from repro.geometry.halfspace import closer_to_query

        u = random_object(rng, m=4, oid="U")
        v = random_object(rng, m=3, oid="V")
        q = random_object(rng, m=3, oid="Q")
        ctx = QueryContext(q)
        _, _, _, adj = build_psd_network(u, v, ctx)
        for i in range(4):
            for j in range(3):
                assert adj[i, j] == closer_to_query(
                    u.points[i], v.points[j], q.points
                )

    def test_comparison_counter_incremented(self, rng):
        u = random_object(rng, m=4, oid="U")
        v = random_object(rng, m=3, oid="V")
        q = random_object(rng, m=2, oid="Q")
        ctx = QueryContext(q)
        build_psd_network(u, v, ctx)
        assert ctx.counters.instance_comparisons >= 12


class TestGeometryFilter:
    def test_point_in_query_hull_2d(self):
        q = UncertainObject(
            [[0.0, 0.0], [4.0, 0.0], [4.0, 4.0], [0.0, 4.0]], oid="Q"
        )
        ctx = QueryContext(q)
        assert point_in_query_hull(np.array([2.0, 2.0]), ctx)
        assert point_in_query_hull(np.array([0.0, 0.0]), ctx)  # vertex
        assert not point_in_query_hull(np.array([5.0, 2.0]), ctx)

    def test_mbr_prefilter(self):
        q = UncertainObject([[0.0, 0.0], [1.0, 1.0]], oid="Q")
        ctx = QueryContext(q)
        assert not point_in_query_hull(np.array([9.0, 9.0]), ctx)

    def test_hull_interior_instance_blocks_dominance(self):
        # v2 sits strictly inside CH(Q): nothing can peer-dominate V.
        q = UncertainObject(
            [[0.0, 0.0], [6.0, 0.0], [3.0, 6.0]], oid="Q"
        )
        v = UncertainObject([[3.0, 2.0], [10.0, 10.0]], oid="V")
        u = UncertainObject([[2.0, 1.0], [8.0, 8.0]], oid="U")
        ctx = QueryContext(q)
        assert not p_dominates(u, v, ctx)
        assert not brute_p_dominates(u, v, q)

    def test_coincident_instance_unblocks(self):
        # U has an instance exactly at v's in-hull location: the filter must
        # not fire, and the max-flow decides.
        q = UncertainObject(
            [[0.0, 0.0], [6.0, 0.0], [3.0, 6.0]], oid="Q"
        )
        shared = [3.0, 2.0]
        v = UncertainObject([shared, [20.0, 20.0]], oid="V")
        u = UncertainObject([shared, [15.0, 15.0]], oid="U")
        ctx = QueryContext(q)
        assert p_dominates(u, v, ctx) == brute_p_dominates(u, v, q)


class TestLevelByLevel:
    @pytest.mark.parametrize("seed", range(3))
    def test_level_path_agrees(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=8, m=10, m_q=3)
        ctx = QueryContext(query)
        for u in objects[:4]:
            for v in objects[4:]:
                with_level = p_dominates(u, v, ctx, use_level=True)
                without = p_dominates(u, v, ctx, use_level=False)
                brute = brute_p_dominates(u, v, query)
                assert with_level == without == brute

    def test_large_instance_counts(self, rng):
        u = random_object(rng, m=24, spread=1.0, oid="U")
        v = random_object(rng, m=20, spread=1.0, oid="V")
        q = random_object(rng, m=5, oid="Q")
        ctx = QueryContext(q)
        assert p_dominates(u, v, ctx, use_level=True) == brute_p_dominates(u, v, q)


class TestDegenerateInputs:
    def test_self_dominance_false(self, rng):
        u = random_object(rng, m=3, oid="U")
        q = random_object(rng, m=2, oid="Q")
        ctx = QueryContext(q)
        clone = UncertainObject(u.points, u.probs, oid="clone")
        assert not p_dominates(u, clone, ctx)

    def test_single_instances(self):
        q = UncertainObject([[0.0]], oid="Q")
        u = UncertainObject([[1.0]], oid="U")
        v = UncertainObject([[2.0]], oid="V")
        ctx = QueryContext(q)
        assert p_dominates(u, v, ctx)
        assert not p_dominates(v, u, ctx)
