"""Tests for the top-k probable NN query (reference [7] style)."""

import numpy as np
import pytest

from repro.functions.n2 import PossibleWorldScores
from repro.query import probable_nn
from repro.query.probable_nn import top_k_probable_nn

from .conftest import random_scene


def _brute_topk(objects, query, k):
    pw = PossibleWorldScores(objects, query)
    scored = sorted(
        ((pw.nn_probability(i), i) for i in range(len(objects))),
        key=lambda t: (-t[0], t[1]),
    )
    return scored[:k]


class TestExactness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_matches_bruteforce(self, seed, k):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        got = top_k_probable_nn(objects, query, k)
        want = _brute_topk(objects, query, k)
        assert [p for p, _ in got] == pytest.approx([p for p, _ in want])

    def test_probabilities_ordered(self, rng):
        objects, query = random_scene(rng, n_objects=12, m=3, m_q=2)
        got = top_k_probable_nn(objects, query, 5)
        probs = [p for p, _ in got]
        assert probs == sorted(probs, reverse=True)

    def test_k_exceeds_population(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=2, m_q=2)
        got = top_k_probable_nn(objects, query, 10)
        assert len(got) == 4
        assert sum(p for p, _ in got) == pytest.approx(1.0, abs=1e-6)

    def test_empty_and_invalid(self, rng):
        _, query = random_scene(rng, n_objects=1, m=2, m_q=2)
        assert top_k_probable_nn([], query, 1) == []
        objects, query = random_scene(rng, n_objects=2, m=2, m_q=2)
        with pytest.raises(ValueError):
            top_k_probable_nn(objects, query, 0)


class TestBoundEffectiveness:
    def test_bounds_skip_exact_scores_on_separated_data(self, rng):
        # Well-separated clusters: most objects have near-zero bounds.
        from repro.objects.uncertain import UncertainObject

        centers = np.linspace(0, 500, 40)
        objects = [
            UncertainObject(rng.normal([c, 0.0], 0.5, size=(3, 2)), oid=i)
            for i, c in enumerate(centers)
        ]
        query = UncertainObject(rng.normal([0.0, 0.0], 0.5, size=(3, 2)), oid="Q")
        got = top_k_probable_nn(objects, query, 1)
        assert got[0][1].oid == 0
        assert probable_nn.last_exact_evaluations < len(objects) // 2

    def test_winner_is_candidate(self, rng):
        """Coherence: the probable-NN winner is an SS-SD candidate."""
        from repro.core.nnc import nn_candidates

        objects, query = random_scene(rng, n_objects=15, m=3, m_q=2)
        got = top_k_probable_nn(objects, query, 1)
        sssd = set(nn_candidates(objects, query, "SSSD").oids())
        assert got[0][1].oid in sssd
