"""API quality gates: documentation and import hygiene for every module."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_importable_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(member) or inspect.isclass(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exports are documented at their source
        if not inspect.getdoc(member):
            undocumented.append(name)
        elif inspect.isclass(member):
            for meth_name, meth in vars(member).items():
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                if not inspect.getdoc(meth):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"{module_name}: undocumented public API {undocumented}"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_exports_resolve():
    for pkg_name in [
        "repro.geometry",
        "repro.stats",
        "repro.objects",
        "repro.functions",
        "repro.core",
        "repro.baselines",
        "repro.query",
        "repro.datasets",
        "repro.experiments",
        "repro.flow",
        "repro.index",
        "repro.resilience",
    ]:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.{name}"
