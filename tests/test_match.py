"""Tests for Match / is_valid_match (Definition 4, Figure 7)."""

import numpy as np
import pytest

from repro.objects.match import Match, MatchTuple, is_valid_match

# Figure 7 objects: A = {(a1,.5),(a2,.3),(a3,.2)}, B = {(b1,.5),(b2,.5)}.
A_PROBS = [0.5, 0.3, 0.2]
B_PROBS = [0.5, 0.5]


class TestFigure7:
    def test_figure_7a_valid(self):
        match = Match(
            [MatchTuple(0, 0, 0.5), MatchTuple(1, 1, 0.3), MatchTuple(2, 1, 0.2)]
        )
        assert is_valid_match(match, A_PROBS, B_PROBS)

    def test_figure_7b_valid_with_splits(self):
        match = Match(
            [
                MatchTuple(0, 0, 0.2),
                MatchTuple(0, 1, 0.3),
                MatchTuple(1, 0, 0.3),
                MatchTuple(2, 1, 0.2),
            ]
        )
        assert is_valid_match(match, A_PROBS, B_PROBS)

    def test_figure_7c_invalid(self):
        # The paper's non-match: marginals do not reproduce the masses.
        match = Match(
            [
                MatchTuple(0, 0, 0.5),
                MatchTuple(1, 0, 0.3),
                MatchTuple(2, 1, 0.2),
            ]
        )
        assert not is_valid_match(match, A_PROBS, B_PROBS)


class TestValidation:
    def test_negative_probability_invalid(self):
        match = Match([MatchTuple(0, 0, -0.1), MatchTuple(0, 0, 1.1)])
        assert not is_valid_match(match, [1.0], [1.0])

    def test_out_of_range_indices_invalid(self):
        match = Match([MatchTuple(5, 0, 1.0)])
        assert not is_valid_match(match, [1.0], [1.0])

    def test_empty_match_only_for_zero_mass(self):
        assert not is_valid_match(Match([]), [1.0], [1.0])

    def test_marginals(self):
        match = Match(
            [MatchTuple(0, 0, 0.25), MatchTuple(0, 1, 0.75), MatchTuple(1, 1, 0.0)]
        )
        assert np.allclose(match.marginal_u(2), [1.0, 0.0])
        assert np.allclose(match.marginal_v(2), [0.25, 0.75])

    def test_len_and_iter(self):
        match = Match([MatchTuple(0, 0, 1.0)])
        assert len(match) == 1
        assert [t.p for t in match] == [1.0]

    def test_repr(self):
        match = Match([MatchTuple(0, 1, 0.5)])
        assert "<0,1,0.5>" in repr(match)
