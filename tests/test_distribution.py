"""Tests for DiscreteDistribution."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.stats.distribution import DiscreteDistribution

from .conftest import distributions


class TestConstruction:
    def test_sorted_on_build(self):
        d = DiscreteDistribution([3.0, 1.0, 2.0], [0.2, 0.5, 0.3])
        assert list(d.values) == [1.0, 2.0, 3.0]
        assert list(d.probs) == [0.5, 0.3, 0.2]

    def test_duplicates_merged(self):
        d = DiscreteDistribution([1.0, 1.0, 2.0], [0.25, 0.25, 0.5])
        assert len(d) == 2
        assert d.probs[0] == pytest.approx(0.5)

    def test_zero_mass_atoms_dropped(self):
        d = DiscreteDistribution([1.0, 2.0, 3.0], [0.5, 0.0, 0.5])
        assert len(d) == 2
        assert 2.0 not in d.values

    def test_uniform_default(self):
        d = DiscreteDistribution([5.0, 1.0])
        assert np.allclose(d.probs, [0.5, 0.5])

    def test_normalize(self):
        d = DiscreteDistribution([1.0, 2.0], [2.0, 6.0], normalize=True)
        assert np.allclose(d.probs, [0.25, 0.75])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([])

    def test_negative_prob_raises(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1.0], [-0.5])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1.0, 2.0], [1.0])

    def test_from_pairs_and_point_mass(self):
        d = DiscreteDistribution.from_pairs([(2.0, 0.5), (1.0, 0.5)])
        assert d.min() == 1.0
        p = DiscreteDistribution.point_mass(7.0)
        assert len(p) == 1 and p.mean() == 7.0

    def test_equality(self):
        a = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        b = DiscreteDistribution([2.0, 1.0], [0.5, 0.5])
        c = DiscreteDistribution([1.0, 2.0], [0.4, 0.6])
        assert a == b
        assert a != c


class TestStatistics:
    def test_min_max_mean(self):
        d = DiscreteDistribution([1.0, 3.0], [0.25, 0.75])
        assert d.min() == 1.0
        assert d.max() == 3.0
        assert d.mean() == pytest.approx(2.5)

    def test_variance(self):
        d = DiscreteDistribution([0.0, 2.0], [0.5, 0.5])
        assert d.variance() == pytest.approx(1.0)

    def test_cdf(self):
        d = DiscreteDistribution([1.0, 2.0, 3.0], [0.2, 0.3, 0.5])
        assert d.cdf(0.5) == 0.0
        assert d.cdf(1.0) == pytest.approx(0.2)
        assert d.cdf(2.5) == pytest.approx(0.5)
        assert d.cdf(10.0) == pytest.approx(1.0)

    @given(distributions())
    @settings(max_examples=60)
    def test_cdf_monotone(self, d):
        xs = np.linspace(d.min() - 1, d.max() + 1, 20)
        cdfs = [d.cdf(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(cdfs, cdfs[1:]))


class TestQuantile:
    def test_definition_10_semantics(self):
        # First sorted instance whose cumulative probability reaches phi.
        d = DiscreteDistribution([1.0, 2.0, 3.0], [0.3, 0.3, 0.4])
        assert d.quantile(0.1) == 1.0
        assert d.quantile(0.3) == 1.0
        assert d.quantile(0.31) == 2.0
        assert d.quantile(0.6) == 2.0
        assert d.quantile(0.61) == 3.0
        assert d.quantile(1.0) == 3.0

    def test_out_of_range_raises(self):
        d = DiscreteDistribution([1.0])
        with pytest.raises(ValueError):
            d.quantile(0.0)
        with pytest.raises(ValueError):
            d.quantile(1.5)

    @given(distributions())
    @settings(max_examples=60)
    def test_quantile_within_support(self, d):
        for phi in (0.01, 0.25, 0.5, 0.75, 1.0):
            q = d.quantile(phi)
            assert d.min() <= q <= d.max()

    @given(distributions())
    @settings(max_examples=60)
    def test_quantile_monotone_in_phi(self, d):
        qs = [d.quantile(phi) for phi in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)]
        assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))


class TestCombinators:
    def test_scaled(self):
        d = DiscreteDistribution([1.0, 2.0], [0.5, 0.5])
        s = d.scaled(0.5)
        assert s.total_mass == pytest.approx(0.5)
        assert s.mean() == d.mean()

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            DiscreteDistribution([1.0]).scaled(0.0)

    def test_mixture_reassembles_joint(self):
        # U_Q must equal the p(q)-weighted mixture of the U_q (Theorem 2's
        # identity).
        parts = [
            (DiscreteDistribution([1.0, 2.0], [0.5, 0.5]), 0.3),
            (DiscreteDistribution([2.0, 4.0], [0.25, 0.75]), 0.7),
        ]
        mix = DiscreteDistribution.mixture(parts)
        assert mix.total_mass == pytest.approx(1.0)
        assert mix.cdf(2.0) == pytest.approx(0.3 * 1.0 + 0.7 * 0.25)

    def test_mixture_empty_raises(self):
        with pytest.raises(ValueError):
            DiscreteDistribution.mixture([])
