"""Tests for the automated Appendix C.2 summary checks."""

import pytest

from repro.experiments.summary import (
    Observation,
    check_candidate_blowup,
    check_progressive_frontloading,
    check_size_coverage_tradeoff,
    format_summary,
    summarize,
)

GOOD_FIG10 = [
    {"dataset": "A", "SSD": 4.0, "SSSD": 11.0, "PSD": 12.7, "FSD": 36.0, "F+SD": 60.0},
    {"dataset": "B", "SSD": 6.0, "SSSD": 26.7, "PSD": 30.3, "FSD": 84.7, "F+SD": 145.0},
]

GOOD_FIG14 = [
    {"progress_%": 20.0, "time_s": 0.1, "avg_quality": 40.0},
    {"progress_%": 50.0, "time_s": 0.3, "avg_quality": 38.0},
    {"progress_%": 100.0, "time_s": 1.0, "avg_quality": 35.0},
]


class TestChecks:
    def test_blowup_holds(self):
        obs = check_candidate_blowup(GOOD_FIG10)
        assert obs.holds
        assert "ratio" in obs.detail

    def test_blowup_violated(self):
        rows = [{"dataset": "X", "SSD": 10, "SSSD": 10, "PSD": 10, "FSD": 10, "F+SD": 10}]
        assert not check_candidate_blowup(rows, min_ratio=1.5).holds

    def test_tradeoff_holds(self):
        assert check_size_coverage_tradeoff(GOOD_FIG10).holds

    def test_tradeoff_violation_named(self):
        rows = [{"dataset": "bad", "SSD": 20, "SSSD": 10, "PSD": 30}]
        obs = check_size_coverage_tradeoff(rows)
        assert not obs.holds
        assert "bad" in obs.detail

    def test_frontloading_holds(self):
        assert check_progressive_frontloading(GOOD_FIG14).holds

    def test_frontloading_violated(self):
        rows = [
            {"time_s": 0.1},
            {"time_s": 0.95},
            {"time_s": 1.0},
        ]
        assert not check_progressive_frontloading(rows, time_share=0.8).holds

    def test_frontloading_empty(self):
        assert not check_progressive_frontloading([]).holds

    def test_frontloading_degenerate_fast(self):
        rows = [{"time_s": 0.0}, {"time_s": 0.0}]
        assert check_progressive_frontloading(rows).holds


class TestSummary:
    def test_summarize_runs_all(self):
        out = summarize(GOOD_FIG10, GOOD_FIG14)
        assert len(out) == 3
        assert all(isinstance(o, Observation) for o in out)
        assert all(o.holds for o in out)

    def test_format(self):
        text = format_summary(summarize(GOOD_FIG10, GOOD_FIG14))
        assert "HOLDS" in text
        assert "front-loading" in text

    def test_on_real_tiny_run(self):
        """End to end on a real (tiny) regeneration."""
        from repro.experiments.figures import fig10_candidate_size, fig14_progressive
        from repro.experiments.params import Scale

        scale = Scale("t", n_factor=0.0012, m_factor=0.12, q_factor=0.15, n_queries=1)
        fig10 = fig10_candidate_size(scale, datasets=("A-N", "USA"))
        fig14 = fig14_progressive(scale)
        observations = summarize(fig10.rows, fig14.rows)
        # Monotonicity is a theorem and must hold even at tiny scale.
        assert observations[1].holds
