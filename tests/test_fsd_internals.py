"""Tests for instance-level F-SD and the F+-SD baseline."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_f_dominates
from repro.core.context import QueryContext
from repro.core.fsd import fplus_dominates, fsd_dominates
from repro.geometry.mbr import mbr_dominates
from repro.objects.uncertain import UncertainObject

from .conftest import random_scene


class TestFSDPaths:
    @pytest.mark.parametrize("seed", range(3))
    def test_local_tree_and_vectorised_paths_agree(self, seed):
        rng = np.random.default_rng(seed)
        objects, query = random_scene(rng, n_objects=10, m=5, m_q=3)
        ctx = QueryContext(query)
        for u in objects[:5]:
            for v in objects[5:]:
                with_trees = fsd_dominates(u, v, ctx, use_local_trees=True)
                vectorised = fsd_dominates(u, v, ctx, use_local_trees=False)
                brute = brute_f_dominates(u, v, query)
                assert with_trees == vectorised == brute

    def test_hull_reduction_sound(self, rng):
        """F-SD through hull vertices only must match the all-instances check."""
        objects, query = random_scene(rng, n_objects=8, m=4, m_q=6)
        ctx_hull = QueryContext(query, use_hull=True)
        ctx_full = QueryContext(query, use_hull=False)
        for u in objects[:4]:
            for v in objects[4:]:
                assert fsd_dominates(u, v, ctx_hull) == fsd_dominates(
                    u, v, ctx_full
                )


class TestFPlus:
    def test_fplus_implies_fsd(self, rng):
        objects, query = random_scene(rng, n_objects=14, m=3, m_q=2, spread=1.0)
        ctx = QueryContext(query)
        hits = 0
        for u in objects:
            for v in objects:
                if u is v:
                    continue
                if fplus_dominates(u, v, ctx):
                    hits += 1
                    assert fsd_dominates(u, v, ctx)
        assert hits > 0

    def test_fplus_counts_mbr_tests(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=3, m_q=2)
        ctx = QueryContext(query)
        fplus_dominates(objects[0], objects[1], ctx)
        assert ctx.counters.mbr_tests == 1


class TestIdenticalObjects:
    def test_identical_never_dominate(self):
        q = UncertainObject([[0.0, 0.0]], oid="Q")
        u = UncertainObject([[5.0, 0.0], [6.0, 0.0]], oid="U")
        v = UncertainObject([[5.0, 0.0], [6.0, 0.0]], oid="V")
        ctx = QueryContext(q)
        assert not fsd_dominates(u, v, ctx)
        assert not fsd_dominates(v, u, ctx)
        assert not fplus_dominates(u, v, ctx)

    def test_equal_distance_different_objects(self):
        # Mirror images around the query: same distance distribution.
        q = UncertainObject([[0.0, 0.0]], oid="Q")
        u = UncertainObject([[3.0, 0.0]], oid="U")
        v = UncertainObject([[-3.0, 0.0]], oid="V")
        ctx = QueryContext(q)
        assert not fsd_dominates(u, v, ctx)
        assert not fsd_dominates(v, u, ctx)


class TestValidationShortcut:
    def test_strict_mbr_dominance_short_circuits(self, rng):
        # Construct a clear dominance so the MBR validation path fires.
        q = UncertainObject([[0.0, 0.0], [1.0, 1.0]], oid="Q")
        u = UncertainObject([[2.0, 0.0], [2.5, 0.5]], oid="U")
        v = UncertainObject([[50.0, 0.0], [51.0, 1.0]], oid="V")
        assert mbr_dominates(u.mbr, v.mbr, q.mbr, strict=True)
        ctx = QueryContext(q)
        assert fsd_dominates(u, v, ctx)
        assert ctx.counters.validated_by_mbr >= 1
