"""Tests for the R-tree substrate."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.index.rtree import RTree


def _point_entries(rng, n, dim=2, lo=0.0, hi=100.0):
    pts = rng.uniform(lo, hi, size=(n, dim))
    return pts, [(MBR(p, p), i) for i, p in enumerate(pts)]


def _box_entries(rng, n, dim=2):
    los = rng.uniform(0, 90, size=(n, dim))
    sizes = rng.uniform(0, 10, size=(n, dim))
    return [(MBR(lo, lo + sz), i) for i, (lo, sz) in enumerate(zip(los, sizes))]


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.range_search(MBR(np.zeros(2), np.ones(2))) == []
        assert tree.nearest(np.zeros(2)) == []

    def test_bulk_load_sizes(self, rng):
        for n in [1, 2, 7, 8, 9, 50, 200]:
            _, entries = _point_entries(rng, n)
            tree = RTree.bulk_load(entries, max_entries=8)
            assert len(tree) == n
            assert len(tree.all_entries()) == n

    def test_insert_matches_bulk(self, rng):
        pts, entries = _point_entries(rng, 80)
        bulk = RTree.bulk_load(entries, max_entries=6)
        inc = RTree(max_entries=6)
        for mbr, payload in entries:
            inc.insert(mbr, payload)
        assert len(inc) == len(bulk) == 80
        box = MBR(np.array([20.0, 20.0]), np.array([60.0, 60.0]))
        got_bulk = sorted(p for _, p in bulk.range_search(box))
        got_inc = sorted(p for _, p in inc.range_search(box))
        assert got_bulk == got_inc

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_node_mbrs_contain_children(self, rng):
        entries = _box_entries(rng, 120)
        tree = RTree.bulk_load(entries, max_entries=5)

        def check(node):
            if node.is_leaf:
                for mbr, _ in node.entries:
                    assert node.mbr.contains(mbr)
            else:
                for child in node.children:
                    assert node.mbr.contains(child.mbr)
                    check(child)

        check(tree.root)

    def test_node_mbrs_contain_children_after_inserts(self, rng):
        tree = RTree(max_entries=4)
        for mbr, payload in _box_entries(rng, 60):
            tree.insert(mbr, payload)

        def check(node):
            if node.is_leaf:
                for mbr, _ in node.entries:
                    assert node.mbr.contains(mbr)
            else:
                for child in node.children:
                    assert node.mbr.contains(child.mbr)
                    check(child)

        check(tree.root)

    def test_fanout_respected(self, rng):
        _, entries = _point_entries(rng, 300)
        tree = RTree.bulk_load(entries, max_entries=8)

        def check(node):
            assert node.member_count() <= 8
            if not node.is_leaf:
                for child in node.children:
                    check(child)

        check(tree.root)

    def test_height_grows_logarithmically(self, rng):
        _, small = _point_entries(rng, 8)
        _, large = _point_entries(rng, 512)
        t_small = RTree.bulk_load(small, max_entries=8)
        t_large = RTree.bulk_load(large, max_entries=8)
        assert t_small.height() <= 2
        assert t_large.height() <= 4


class TestQueries:
    def test_range_search_matches_bruteforce(self, rng):
        pts, entries = _point_entries(rng, 150)
        tree = RTree.bulk_load(entries, max_entries=6)
        for _ in range(10):
            lo = rng.uniform(0, 80, size=2)
            box = MBR(lo, lo + rng.uniform(5, 30, size=2))
            expected = sorted(
                i for i, p in enumerate(pts) if box.contains_point(p)
            )
            got = sorted(payload for _, payload in tree.range_search(box))
            assert got == expected

    def test_nearest_matches_bruteforce(self, rng):
        pts, entries = _point_entries(rng, 120)
        tree = RTree.bulk_load(entries, max_entries=5)
        for _ in range(10):
            q = rng.uniform(0, 100, size=2)
            dists = np.linalg.norm(pts - q, axis=1)
            expected = float(dists.min())
            assert tree.nearest_distance(q) == pytest.approx(expected)
            got_k = tree.nearest(q, k=5)
            assert [d for d, _ in got_k] == pytest.approx(
                sorted(dists)[:5].tolist() if hasattr(sorted(dists)[:5], 'tolist')
                else sorted(dists)[:5]
            )

    def test_farthest_matches_bruteforce(self, rng):
        pts, entries = _point_entries(rng, 120)
        tree = RTree.bulk_load(entries, max_entries=5)
        for _ in range(10):
            q = rng.uniform(-50, 150, size=2)
            dists = np.linalg.norm(pts - q, axis=1)
            assert tree.farthest_distance(q) == pytest.approx(float(dists.max()))

    def test_nearest_on_empty_raises(self):
        with pytest.raises(ValueError):
            RTree().nearest_distance(np.zeros(2))
        with pytest.raises(ValueError):
            RTree().farthest_distance(np.zeros(2))

    def test_incremental_order_nondecreasing(self, rng):
        _, entries = _point_entries(rng, 100)
        tree = RTree.bulk_load(entries, max_entries=6)
        q = MBR(np.array([50.0, 50.0]), np.array([55.0, 55.0]))
        last = -1.0
        count = 0
        for dist, is_entry, _, _ in tree.incremental_by_mindist(q):
            assert dist >= last - 1e-9
            last = dist
            if is_entry:
                count += 1
        assert count == 100

    def test_incremental_prune_via_send(self, rng):
        _, entries = _point_entries(rng, 64)
        tree = RTree.bulk_load(entries, max_entries=4)
        q = MBR(np.zeros(2), np.zeros(2))
        gen = tree.incremental_by_mindist(q)
        seen_entries = 0
        try:
            item = next(gen)
            while True:
                dist, is_entry, _, _ = item
                if is_entry:
                    seen_entries += 1
                    item = next(gen)
                else:
                    item = gen.send(False)  # prune every subtree
        except StopIteration:
            pass
        # Pruning every internal node means no entries are ever reached
        # (the root is internal for 64 points at fan-out 4).
        assert seen_entries == 0


class TestPartitions:
    def test_partitions_cover_all_payloads(self, rng):
        _, entries = _point_entries(rng, 90)
        tree = RTree.bulk_load(entries, max_entries=4)
        for k in [1, 2, 4, 16, 1000]:
            parts = tree.partitions(k)
            payloads = sorted(p for _, group in parts for p in group)
            assert payloads == list(range(90))

    def test_partitions_request_honored_when_possible(self, rng):
        _, entries = _point_entries(rng, 64)
        tree = RTree.bulk_load(entries, max_entries=4)
        parts = tree.partitions(4)
        assert len(parts) >= 4

    def test_partition_mbrs_bound_points(self, rng):
        pts, entries = _point_entries(rng, 60)
        tree = RTree.bulk_load(entries, max_entries=4)
        for mbr, group in tree.partitions(8):
            for payload in group:
                assert mbr.contains_point(pts[payload])

    def test_empty_tree_partitions(self):
        assert RTree().partitions(4) == []


class TestDeletion:
    def test_delete_and_queries_stay_exact(self, rng):
        pts, entries = _point_entries(rng, 120)
        tree = RTree.bulk_load(entries, max_entries=5)
        removed = set()
        order = rng.permutation(120)[:60]
        for idx in order:
            assert tree.delete(entries[idx][0], entries[idx][1])
            removed.add(int(idx))
        assert len(tree) == 60
        # Range query exactness after heavy deletion + condensation.
        box = MBR(np.array([10.0, 10.0]), np.array([80.0, 80.0]))
        expected = sorted(
            i
            for i, p in enumerate(pts)
            if i not in removed and box.contains_point(p)
        )
        got = sorted(payload for _, payload in tree.range_search(box))
        assert got == expected
        # NN exactness too.
        remaining = [i for i in range(120) if i not in removed]
        q = rng.uniform(0, 100, size=2)
        want = min(float(np.linalg.norm(pts[i] - q)) for i in remaining)
        assert tree.nearest_distance(q) == pytest.approx(want)

    def test_delete_missing_returns_false(self, rng):
        _, entries = _point_entries(rng, 10)
        tree = RTree.bulk_load(entries, max_entries=4)
        assert not tree.delete(entries[0][0], object())

    def test_delete_everything(self, rng):
        _, entries = _point_entries(rng, 30)
        tree = RTree.bulk_load(entries, max_entries=4)
        for mbr, payload in entries:
            assert tree.delete(mbr, payload)
        assert len(tree) == 0
        assert tree.all_entries() == []
        tree.insert(entries[0][0], entries[0][1])  # still usable
        assert len(tree) == 1

    def test_node_invariants_after_deletions(self, rng):
        entries = _box_entries(rng, 80)
        tree = RTree.bulk_load(entries, max_entries=4)
        for mbr, payload in entries[:50]:
            tree.delete(mbr, payload)

        def check(node):
            if node.is_leaf:
                for mbr, _ in node.entries:
                    assert node.mbr.contains(mbr)
            else:
                assert node.children
                for child in node.children:
                    assert node.mbr.contains(child.mbr)
                    check(child)

        check(tree.root)
