"""Router tier: bit-identity, hedging, failover, write fan-out, replay.

The headline pin (ISSUE 9 acceptance): for every operator, k, and oracle
partitioner, a router scatter-gathering shard-scoped reads over a fleet
of node servers returns answers bit-identical to single-process
Algorithm 1 — candidate sets *and* final dominator counts.  The rest of
the file covers the distributed-systems machinery around that invariant:
hedged requests, circuit-breaking failover, replica write fan-out with
epoch reconciliation, stale-read detection, and end-to-end audit replay.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.objects.uncertain import UncertainObject
from repro.serve import protocol
from repro.serve.audit import AuditLog, load_audit, replay_audit
from repro.serve.remote import CircuitBreaker, LocalNode, RemoteNodeError
from repro.serve.router import RouterApp
from repro.serve.server import ServeApp
from repro.serve.shard import ShardedSearch
from repro.serve.updates import DatasetManager

OPERATORS = protocol.OPERATOR_NAMES
SHARDS = 4
NODE_IDS = ("n1", "n2", "n3")


def _copies(objects):
    """Fresh object copies so fleets never share mutable engine state."""
    return [
        UncertainObject(
            np.copy(o.points), np.copy(o.probs), oid=o.oid
        )
        for o in objects
    ]


def make_fleet(
    objects,
    *,
    shards=SHARDS,
    replication=2,
    node_ids=NODE_IDS,
    hedge_ms=0,
    **router_kw,
):
    """An in-process fleet: one hash-partitioned ServeApp per node."""
    nodes = {}
    apps = []
    for nid in node_ids:
        manager = DatasetManager(
            _copies(objects),
            shards=shards,
            partitioner="hash",
            backend="serial",
            compact_threshold=1.0,
        )
        app = ServeApp(manager, node_id=nid)
        apps.append(app)
        nodes[nid] = LocalNode(nid, app)
    router = RouterApp(
        nodes, shards=shards, replication=replication, hedge_ms=hedge_ms,
        **router_kw,
    )
    return router, nodes, apps


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(13)
    centers = synthetic.anticorrelated_centers(90, 2, rng)
    objects = synthetic.make_objects(centers, 4, 120.0, rng)
    query = synthetic.make_query(centers[11], 3, 80.0, rng)
    return objects, query


@pytest.fixture(scope="module")
def fleet(workload):
    objects, _ = workload
    router, nodes, apps = make_fleet(objects)
    yield router, nodes, apps
    router.close()
    for app in apps:
        app.close()


@pytest.fixture(scope="module")
def oracles(workload):
    objects, _ = workload
    built = {
        part: ShardedSearch(
            _copies(objects), shards=SHARDS, partitioner=part,
            backend="serial",
        )
        for part in ("round-robin", "centroid", "hash")
    }
    yield built
    for search in built.values():
        search.close()


def _query_payload(query, operator, k):
    return {
        "points": query.points.tolist(),
        "probs": query.probs.tolist(),
        "operator": operator,
        "k": k,
        "cache": False,
    }


def _pairs(body):
    return sorted((c["oid"], c["dominators"]) for c in body["candidates"])


class TestBitIdentity:
    """Router answers == single-process Algorithm 1, every configuration."""

    @pytest.mark.parametrize("partitioner", ["round-robin", "centroid", "hash"])
    @pytest.mark.parametrize("k", [1, 3])
    @pytest.mark.parametrize("operator", OPERATORS)
    def test_matches_oracle(self, fleet, oracles, workload, operator, k,
                            partitioner):
        _, query = workload
        router, _, _ = fleet
        status, body = router.dispatch(
            "POST", "/query", _query_payload(query, operator, k), {}
        )
        assert status == 200, body
        oracle = oracles[partitioner].run(query, operator, k=k)
        want = sorted(zip(oracle.oids(), oracle.dominator_counts))
        assert _pairs(body) == want
        assert body["backend"] == "router"
        assert not body["degraded"]

    def test_scoped_router_query(self, fleet, oracles, workload):
        """A shard-scoped query *to the router* answers over the subset."""
        _, query = workload
        router, _, _ = fleet
        payload = _query_payload(query, "FSD", 2)
        payload["shards"] = [0, 2]
        status, body = router.dispatch("POST", "/query", payload, {})
        assert status == 200, body
        oracle = oracles["hash"].run(query, "FSD", k=2, shard_subset=[0, 2])
        assert _pairs(body) == sorted(
            zip(oracle.oids(), oracle.dominator_counts)
        )

    def test_out_of_range_scope_is_400(self, fleet, workload):
        _, query = workload
        router, _, _ = fleet
        payload = _query_payload(query, "FSD", 1)
        payload["shards"] = [SHARDS]
        status, body = router.dispatch("POST", "/query", payload, {})
        assert status == 400


class TestNodeRoleProtocol:
    """The node half of the router protocol, on a plain ServeApp."""

    @pytest.fixture(scope="class")
    def node_app(self, workload):
        objects, _ = workload
        manager = DatasetManager(
            _copies(objects), shards=SHARDS, partitioner="hash",
            backend="serial", compact_threshold=1.0,
        )
        from repro.serve.cache import ResultCache

        app = ServeApp(manager, cache=ResultCache(32))
        yield app
        app.close()

    def test_scoped_answer_matches_subset_oracle(self, node_app, workload,
                                                 oracles):
        _, query = workload
        payload = _query_payload(query, "PSD", 2)
        payload["shards"] = [1]
        status, body = node_app.dispatch("POST", "/query", payload, {})
        assert status == 200, body
        oracle = oracles["hash"].run(query, "PSD", k=2, shard_subset=[1])
        assert _pairs(body) == sorted(
            zip(oracle.oids(), oracle.dominator_counts)
        )

    def test_include_objects_roundtrips_geometry_exactly(self, node_app,
                                                         workload):
        objects, query = workload
        by_oid = {o.oid: o for o in objects}
        payload = _query_payload(query, "FSD", 2)
        payload["include_objects"] = True
        status, body = node_app.dispatch("POST", "/query", payload, {})
        assert status == 200, body
        assert body["candidates"], "workload query should have candidates"
        # Simulate the wire: JSON-encode and decode, then rebuild without
        # re-normalising.  float64 repr round-trips exactly, so the
        # reconstructed object must match the stored one bit-for-bit.
        wire = json.loads(json.dumps(body))
        for cand in wire["candidates"]:
            rebuilt = UncertainObject(
                cand["points"], cand["probs"], oid=cand["oid"],
                normalize=False,
            )
            original = by_oid[cand["oid"]]
            np.testing.assert_array_equal(rebuilt.points, original.points)
            np.testing.assert_array_equal(rebuilt.probs, original.probs)

    def test_plain_answers_omit_geometry(self, node_app, workload):
        _, query = workload
        status, body = node_app.dispatch(
            "POST", "/query", _query_payload(query, "FSD", 1), {}
        )
        assert status == 200
        assert "points" not in body["candidates"][0]

    def test_scoped_reads_bypass_cache(self, node_app, workload):
        _, query = workload
        payload = _query_payload(query, "SSD", 1)
        payload["cache"] = True
        payload["shards"] = [0]
        for _ in range(2):
            status, body = node_app.dispatch("POST", "/query", payload, {})
            assert status == 200
            assert not body["cached"]

    def test_out_of_range_subset_is_400(self, node_app, workload):
        _, query = workload
        payload = _query_payload(query, "SSD", 1)
        payload["shards"] = [99]
        status, _ = node_app.dispatch("POST", "/query", payload, {})
        assert status == 400

    def test_parse_rejects_bad_scope(self):
        for bad in ([], [True], ["1"], [-1], "0"):
            with pytest.raises(protocol.ProtocolError):
                protocol.parse_query_request(
                    {"points": [[0.0, 0.0]], "shards": bad}
                )
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_query_request(
                {"points": [[0.0, 0.0]], "include_objects": "yes"}
            )


class TestFailoverAndBreakers:
    def test_reads_survive_a_dead_replica(self, workload):
        objects, query = workload
        router, nodes, apps = make_fleet(objects)
        try:
            nodes["n2"].fail = True
            for k in (1, 2, 3):
                status, body = router.dispatch(
                    "POST", "/query", _query_payload(query, "FSD", k), {}
                )
                assert status == 200, body
            assert router.registry.total("repro_router_failovers_total") > 0
        finally:
            router.close()
            for app in apps:
                app.close()

    def test_breaker_opens_and_stops_traffic(self, workload):
        objects, query = workload
        router, nodes, apps = make_fleet(objects)
        try:
            nodes["n1"].fail = True
            for _ in range(6):
                status, _ = router.dispatch(
                    "POST", "/query", _query_payload(query, "SSD", 1), {}
                )
                assert status == 200
            assert nodes["n1"].breaker.state == "open"
            calls_when_open = nodes["n1"].calls
            for _ in range(4):
                router.dispatch(
                    "POST", "/query", _query_payload(query, "SSD", 1), {}
                )
            assert nodes["n1"].calls == calls_when_open
        finally:
            router.close()
            for app in apps:
                app.close()

    def test_all_replicas_dead_is_retryable_503(self, workload):
        objects, query = workload
        router, nodes, apps = make_fleet(
            objects, node_ids=("n1", "n2"), replication=2
        )
        try:
            nodes["n1"].fail = True
            nodes["n2"].fail = True
            status, body = router.dispatch(
                "POST", "/query", _query_payload(query, "FSD", 1), {}
            )
            assert status == 503
            assert body["retryable"] is True
        finally:
            router.close()
            for app in apps:
                app.close()

    def test_health_sweep_marks_dead_nodes(self, workload):
        objects, _ = workload
        router, nodes, apps = make_fleet(objects)
        try:
            nodes["n3"].fail = True
            up = router._sweep_health()
            assert up == {"n1": True, "n2": True, "n3": False}
            reg = router.registry
            assert reg.value("repro_router_node_up", {"node": "n3"}) == 0.0
            assert reg.value("repro_router_node_up", {"node": "n1"}) == 1.0
        finally:
            router.close()
            for app in apps:
                app.close()

    def test_breaker_half_open_probe(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.0)
        breaker.record_failure()
        breaker.record_failure()
        # Cooldown 0: immediately half-open; exactly one probe admitted.
        assert breaker.admits()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"


class TestHedging:
    def test_slow_primary_is_hedged(self, workload):
        objects, query = workload
        router, nodes, apps = make_fleet(
            objects, shards=1, replication=2, hedge_ms=25,
        )
        try:
            slow = router.placement.owners(0)[0]
            nodes[slow].delay_s = 0.4
            status, body = router.dispatch(
                "POST", "/query", _query_payload(query, "FSD", 1), {}
            )
            assert status == 200, body
            assert body["hedged"] is True
            reg = router.registry
            assert reg.value("repro_router_hedges_total", {"shard": "0"}) >= 1
            assert reg.total("repro_router_hedge_wins_total") >= 1
        finally:
            router.close()
            for app in apps:
                app.close()

    def test_hedge_zero_disables(self, workload):
        objects, query = workload
        router, nodes, apps = make_fleet(
            objects, shards=1, replication=2, hedge_ms=0,
        )
        try:
            slow = router.placement.owners(0)[0]
            nodes[slow].delay_s = 0.05
            status, body = router.dispatch(
                "POST", "/query", _query_payload(query, "FSD", 1), {}
            )
            assert status == 200
            assert body["hedged"] is False
            assert router.registry.total("repro_router_hedges_total") == 0
        finally:
            router.close()
            for app in apps:
                app.close()

    def test_adaptive_threshold_warms_up(self, workload):
        objects, _ = workload
        router, nodes, apps = make_fleet(objects, hedge_ms=None)
        try:
            node = nodes["n1"]
            assert router._hedge_threshold(node) is None  # cold
            for _ in range(16):
                node.call("GET", "/healthz")
            threshold = router._hedge_threshold(node)
            assert threshold is not None and threshold >= 0.001
        finally:
            router.close()
            for app in apps:
                app.close()


class TestWrites:
    @pytest.fixture()
    def write_fleet(self, workload):
        objects, _ = workload
        router, nodes, apps = make_fleet(objects)
        yield router, nodes, apps
        router.close()
        for app in apps:
            app.close()

    def test_insert_fans_out_to_all_owners(self, write_fleet):
        router, nodes, apps = write_fleet
        status, body = router.dispatch(
            "POST", "/insert", {"points": [[0.5, 0.5], [1.5, 0.5]]}, {}
        )
        assert status == 200, body
        oid = body["oid"]
        assert oid.startswith("r-")
        assert body["replicas"] == {"acked": 2, "converged": 0, "failed": 0}
        assert body["epoch"] == 1
        owners = router.placement.owners_of(oid)
        assert len(owners) == 2
        for nid in owners:
            assert nodes[nid].app.manager.get(oid) is not None
        for nid in set(NODE_IDS) - set(owners):
            assert nodes[nid].app.manager.get(oid) is None

    def test_duplicate_insert_is_409(self, write_fleet):
        router, _, _ = write_fleet
        payload = {"points": [[0.0, 0.0]], "oid": "dup-1"}
        status, _ = router.dispatch("POST", "/insert", payload, {})
        assert status == 200
        status, body = router.dispatch("POST", "/insert", payload, {})
        assert status == 409

    def test_partial_write_flags_and_counts(self, write_fleet):
        router, nodes, _ = write_fleet
        oid = "partial-1"
        dead = router.placement.owners_of(oid)[1]
        nodes[dead].fail = True
        status, body = router.dispatch(
            "POST", "/insert", {"points": [[2.0, 2.0]], "oid": oid}, {}
        )
        assert status == 200, body
        assert body["partial"] is True
        assert body["replicas"]["acked"] == 1
        assert body["replicas"]["failed"] == 1
        assert router.registry.value(
            "repro_router_partial_writes_total", {"op": "insert"}
        ) == 1

    def test_all_owners_dead_is_retryable_503(self, write_fleet):
        router, nodes, _ = write_fleet
        oid = "doomed-1"
        for nid in router.placement.owners_of(oid):
            nodes[nid].fail = True
        status, body = router.dispatch(
            "POST", "/insert", {"points": [[1.0, 1.0]], "oid": oid}, {}
        )
        assert status == 503
        assert body["retryable"] is True

    def test_delete_unknown_is_404(self, write_fleet):
        router, _, _ = write_fleet
        status, _ = router.dispatch("POST", "/delete", {"oid": "ghost"}, {})
        assert status == 404

    def test_delete_reconciles_diverged_replica(self, write_fleet):
        """One replica already tombstoned the oid (it missed nothing — a
        prior partial delete reached it): the group converges, the write
        counts as reconciled, and the answer is a success."""
        router, nodes, _ = write_fleet
        oid = "recon-1"
        status, _ = router.dispatch(
            "POST", "/insert", {"points": [[3.0, 3.0]], "oid": oid}, {}
        )
        assert status == 200
        ahead = router.placement.owners_of(oid)[0]
        status, _ = nodes[ahead].app.dispatch(
            "POST", "/delete", {"oid": oid}, {}
        )
        assert status == 200
        status, body = router.dispatch("POST", "/delete", {"oid": oid}, {})
        assert status == 200, body
        assert body["replicas"]["acked"] == 1
        assert body["replicas"]["converged"] == 1
        assert router.registry.value(
            "repro_router_reconciled_writes_total", {"op": "delete"}
        ) == 1

    def test_epoch_advances_once_per_mutation(self, write_fleet):
        router, _, _ = write_fleet
        assert router.epoch == 0
        router.dispatch("POST", "/insert", {"points": [[0.1, 0.1]]}, {})
        router.dispatch("POST", "/insert", {"points": [[0.2, 0.2]]}, {})
        assert router.epoch == 2
        status, body = router.dispatch(
            "POST", "/query",
            {"points": [[0.0, 0.0]], "operator": "SSD", "cache": False}, {},
        )
        assert status == 200
        assert body["epoch"] == 2

    def test_stale_read_fails_over(self, write_fleet):
        router, nodes, _ = write_fleet
        # Pretend the rotation-chosen primary for shard 0 acked a write at
        # a far-future local epoch: its reads are stale until it catches
        # up, so the router must answer from the other replica.
        primary = router.placement.owners(0)[0]
        router._acked_epoch[primary] = 10_000
        payload = {
            "points": [[0.0, 0.0]], "operator": "SSD", "cache": False,
            "shards": [0],
        }
        status, body = router.dispatch("POST", "/query", payload, {})
        assert status == 200, body
        assert router.registry.total("repro_router_stale_reads_total") >= 1


class TestAuditReplay:
    def test_router_log_replays_clean(self, workload, tmp_path):
        objects, query = workload
        audit = AuditLog(tmp_path / "router-audit.jsonl")
        router, nodes, apps = make_fleet(objects, audit=audit)
        try:
            for operator in ("SSD", "FSD"):
                router.dispatch(
                    "POST", "/query", _query_payload(query, operator, 2), {}
                )
            status, body = router.dispatch(
                "POST", "/insert", {"points": [[0.25, 0.25], [0.5, 0.25]]},
                {},
            )
            assert status == 200
            inserted = body["oid"]
            router.dispatch(
                "POST", "/query", _query_payload(query, "PSD", 2), {}
            )
            router.dispatch("POST", "/delete", {"oid": inserted}, {})
            router.dispatch(
                "POST", "/query", _query_payload(query, "FSD", 1), {}
            )
        finally:
            router.close()
            for app in apps:
                app.close()
            audit.close()
        records = load_audit(tmp_path / "router-audit.jsonl")
        report = replay_audit(
            records, _copies(objects), shards=SHARDS, partitioner="hash"
        )
        assert report.ok, report.to_dict()
        assert report.replayed == 4
        assert report.verified == 4
        assert report.mutations_applied == 2

    def test_node_log_skips_scoped_records(self, workload, tmp_path):
        """A node server's audit log mixes full and scoped queries; the
        replayer verifies the former and loudly skips the latter."""
        objects, query = workload
        audit = AuditLog(tmp_path / "node-audit.jsonl")
        manager = DatasetManager(
            _copies(objects), shards=SHARDS, partitioner="hash",
            backend="serial", compact_threshold=1.0,
        )
        app = ServeApp(manager, audit=audit)
        try:
            full = _query_payload(query, "FSD", 1)
            status, _ = app.dispatch("POST", "/query", full, {})
            assert status == 200
            scoped = dict(full)
            scoped["shards"] = [0]
            scoped["include_objects"] = True
            status, _ = app.dispatch("POST", "/query", scoped, {})
            assert status == 200
        finally:
            app.close()
            audit.close()
        records = load_audit(tmp_path / "node-audit.jsonl")
        report = replay_audit(
            records, _copies(objects), shards=SHARDS, partitioner="hash"
        )
        assert report.ok
        assert report.verified == 1
        assert report.skipped_scoped == 1


class TestTracePropagation:
    def test_fleet_spans_share_one_trace(self, workload, tmp_path):
        objects, query = workload
        router, nodes, apps = make_fleet(
            objects, sample_rate=1.0, trace_dir=tmp_path / "traces",
        )
        try:
            status, body = router.dispatch(
                "POST", "/query", _query_payload(query, "FSD", 1),
                {"x-request-id": "req-router-1"},
            )
            assert status == 200
            assert body["request_id"] == "req-router-1"
            trace_id = body["trace_id"]
            assert router.last_trace is not None
            assert body["nodes"], "router should report the nodes it used"
            for nid in body["nodes"]:
                app = nodes[nid].app
                # Node sample rate is 0, but X-Sampled forces sampling, so
                # every node that served a shard produced a trace carrying
                # the router's trace id and request id.
                assert app.last_trace is not None
                args = [
                    e["args"] for e in app.last_trace["traceEvents"]
                    if e.get("args", {}).get("trace_id")
                ]
                assert args and all(
                    a["trace_id"] == trace_id for a in args
                )
                assert all(
                    a["request_id"] == "req-router-1" for a in args
                )
        finally:
            router.close()
            for app in apps:
                app.close()


class TestIntrospection:
    def test_healthz_and_status_shape(self, fleet):
        router, _, _ = fleet
        health = router.healthz()
        assert health["role"] == "router"
        assert health["shards"] == SHARDS
        assert health["replication"] == 2
        assert set(health["nodes"]) == set(NODE_IDS)
        for row in health["nodes"].values():
            assert {"breaker", "calls", "acked_epoch"} <= set(row)
        status = router.status()
        assert status["placement"]["shards"] == SHARDS
        assert set(status["placement"]["nodes"]) == set(NODE_IDS)
        assert "slo" in status

    def test_remote_node_url_validation(self):
        from repro.serve.remote import RemoteNode

        node = RemoteNode("n1", "http://127.0.0.1:9")
        assert node.url == "http://127.0.0.1:9"
        assert RemoteNode("n2", "127.0.0.1:9").port == 9
        with pytest.raises(ValueError):
            RemoteNode("n3", "ftp://example.com")
        with pytest.raises(RemoteNodeError):
            node.call("GET", "/healthz", timeout_s=0.2)
