"""Multi-window burn-rate alerting: window math on a fake clock, wiring.

The fast/slow pairing is the whole point: a hard outage must trip the
fast window within minutes, a simmering regression must survive into the
slow window, and an idle fleet must never page off one bad probe.  All
window arithmetic runs against an injected clock so the tests cover
hours of SLO history in microseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.alerts import DEFAULT_WINDOWS, BurnRateMonitor
from repro.obs.metrics import MetricsRegistry
from repro.serve.remote import LocalNode
from repro.serve.router import RouterApp
from repro.serve.server import ServeApp
from repro.serve.updates import DatasetManager

QUERY_POINTS = [[4700.0, 5300.0], [5200.0, 5800.0]]


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _monitor(**kw):
    clock = _Clock()
    kw.setdefault("objective", 0.99)
    monitor = BurnRateMonitor(now_fn=clock, **kw)
    return monitor, clock


def _active(monitor):
    return {row["alert"] for row in monitor.evaluate() if row["active"]}


class TestWindowMath:
    def test_all_bad_traffic_fires_fast_burn(self):
        monitor, _ = _monitor()
        for _ in range(20):
            monitor.record(latency_bad=True)
        active = _active(monitor)
        assert "latency-fast-burn" in active
        # 100% bad is 100x budget burn: the slow window trips too.
        assert "latency-slow-burn" in active
        assert "error-fast-burn" not in active

    def test_min_samples_guards_idle_fleet(self):
        monitor, _ = _monitor(min_samples=10)
        for _ in range(9):
            monitor.record(error=True)
        assert _active(monitor) == set()
        monitor.record(error=True)  # the 10th observation arms it
        assert "error-fast-burn" in _active(monitor)

    def test_burn_below_threshold_stays_quiet(self):
        monitor, _ = _monitor()
        # 10% bad on a 1% budget = 10x burn: below the 14.4x fast
        # threshold, above the 6x slow one.
        for i in range(100):
            monitor.record(degraded=(i % 10 == 0))
        active = _active(monitor)
        assert "degraded-fast-burn" not in active
        assert "degraded-slow-burn" in active

    def test_fast_window_forgets_slow_window_remembers(self):
        monitor, clock = _monitor()
        for _ in range(20):
            monitor.record(latency_bad=True)
        assert "latency-fast-burn" in _active(monitor)
        # Six minutes later the outage is over and good traffic flows:
        # the 5m fast window has forgotten, the 1h slow window has not.
        clock.advance(360.0)
        for _ in range(20):
            monitor.record()
        active = _active(monitor)
        assert "latency-fast-burn" not in active
        assert "latency-slow-burn" in active
        # Two hours later everything has aged out.
        clock.advance(7200.0)
        for _ in range(20):
            monitor.record()
        assert _active(monitor) == set()

    def test_gauge_tracks_firing_and_resolution(self):
        registry = MetricsRegistry()
        clock = _Clock()
        monitor = BurnRateMonitor(registry=registry, now_fn=clock)
        for _ in range(20):
            monitor.record(error=True)
        monitor.evaluate()
        assert registry.value(
            "repro_alerts_active", {"alert": "error-fast-burn"}
        ) == 1.0
        clock.advance(7200.0)
        for _ in range(20):
            monitor.record()
        monitor.evaluate()
        # Resolved alerts stay visible at 0.0 — a vanishing series is
        # indistinguishable from one that never existed.
        assert registry.value(
            "repro_alerts_active", {"alert": "error-fast-burn"}
        ) == 0.0

    def test_snapshot_shape(self):
        monitor, _ = _monitor()
        for _ in range(20):
            monitor.record(latency_bad=True)
        snap = monitor.snapshot()
        assert snap["objective"] == 0.99
        assert snap["active"] == sorted(snap["active"])
        assert "latency-fast-burn" in snap["active"]
        assert len(snap["rows"]) == len(DEFAULT_WINDOWS) * 3
        for row in snap["rows"]:
            assert {"alert", "burn_rate", "ratio", "requests"} <= set(row)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BurnRateMonitor(objective=1.0)
        with pytest.raises(ValueError):
            BurnRateMonitor(bucket_s=0)
        with pytest.raises(ValueError):
            BurnRateMonitor(windows=())


@pytest.fixture(scope="module")
def objects():
    rng = np.random.default_rng(31)
    centers = synthetic.anticorrelated_centers(40, 2, rng)
    return synthetic.make_objects(centers, 4, 120.0, rng)


class TestServeWiring:
    def test_slow_requests_fire_fast_burn_on_status(self, objects):
        registry = MetricsRegistry()
        manager = DatasetManager(
            objects, shards=2, backend="serial", metrics=registry
        )
        # Sub-microsecond latency SLO: every real query is an SLO miss.
        app = ServeApp(manager, registry=registry, slo_latency_ms=1e-6)
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                       "cache": False}
            for _ in range(12):
                status, _ = app.dispatch("POST", "/query", payload)
                assert status == 200
            body = app.status()
            assert "latency-fast-burn" in body["alerts"]["active"]
            assert registry.value(
                "repro_alerts_active", {"alert": "latency-fast-burn"}
            ) == 1.0
        finally:
            manager.close()

    def test_slow_replica_fires_router_fast_burn(self, objects):
        apps, nodes = {}, {}
        for nid in ("n1", "n2"):
            manager = DatasetManager(
                objects, shards=2, partitioner="hash", backend="serial"
            )
            app = ServeApp(manager, node_id=nid)
            apps[nid] = app
            nodes[nid] = LocalNode(nid, app)
        nodes["n2"].delay_s = 0.005  # deterministically slow replica
        router = RouterApp(
            nodes, shards=2, replication=1, health_interval_s=0,
            hedge_ms=0, slo_latency_ms=1.0,
        )
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                       "cache": False}
            for _ in range(12):
                status, _ = router.dispatch("POST", "/query", payload)
                assert status == 200
            assert "latency-fast-burn" in router.status()["alerts"]["active"]
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()
