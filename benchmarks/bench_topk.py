"""Benchmark — function-specific top-k engine vs. exhaustive scoring.

Measures the value of the admissible index bounds: the best-first engine
should compute far fewer exact scores (and run faster) than scoring every
object, for both cheap (mean) and expensive (EMD) functions.
"""

import numpy as np
import pytest

from repro.functions.base import MeanAggregate, QuantileAggregate
from repro.functions.n3 import earth_movers_distance
from repro.query.topk import FunctionTopK, emd_scorer

from .conftest import bench_scene, write_result  # noqa: F401


@pytest.fixture(scope="module")
def engine(bench_scene):  # noqa: F811
    objects, query = bench_scene
    return FunctionTopK(objects), objects, query


def test_topk_mean_with_bounds(benchmark, engine):
    topk, objects, query = engine
    result = benchmark(lambda: topk.query(query, MeanAggregate(), k=5))
    assert len(result) == 5
    write_result(
        "topk_bounds",
        f"mean top-5 over {len(objects)} objects: "
        f"{topk.last_exact_scores} exact scores computed",
    )
    assert topk.last_exact_scores < len(objects)


def test_topk_mean_bruteforce(benchmark, engine):
    _, objects, query = engine
    agg = MeanAggregate()

    def brute():
        return sorted(agg(o.distance_distribution(query)) for o in objects)[:5]

    benchmark(brute)


def test_topk_quantile_with_bounds(benchmark, engine):
    topk, _, query = engine
    result = benchmark(lambda: topk.query(query, QuantileAggregate(0.5), k=5))
    assert len(result) == 5


def test_topk_emd_with_bounds(benchmark, engine):
    topk, objects, query = engine
    result = benchmark.pedantic(
        lambda: topk.query(query, emd_scorer(), k=3), rounds=3, iterations=1
    )
    assert len(result) == 3
    # Cross-check against exhaustive EMD scoring once.
    want = sorted(earth_movers_distance(o, query) for o in objects)[:3]
    assert [s for s, _ in result] == pytest.approx(want, abs=1e-6)


def test_topk_emd_bruteforce(benchmark, engine):
    _, objects, query = engine
    benchmark.pedantic(
        lambda: sorted(earth_movers_distance(o, query) for o in objects)[:3],
        rounds=2,
        iterations=1,
    )
