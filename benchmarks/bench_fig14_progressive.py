"""Figure 14 — the progressive property of Algorithm 1.

Regenerates the decile profile (time and candidate quality per slice of the
returned stream) and benchmarks time-to-first-candidate against the full
search.  Expected shape (paper): a large fraction of candidates arrives in a
small fraction of the total time, and earlier candidates dominate at least
as many objects as later ones on average.
"""

import pytest

from repro.core.nnc import NNCSearch
from repro.experiments.figures import fig14_progressive

from .conftest import SCALE, bench_scene, print_and_save  # noqa: F401


@pytest.fixture(scope="module")
def fig14_rows():
    result = fig14_progressive(SCALE)
    print_and_save("fig14_progressive", result.rows, result.figure)
    return result.rows


def test_progressive_profile_shape(fig14_rows):
    assert fig14_rows
    times = [row["time_s"] for row in fig14_rows]
    assert times == sorted(times)
    # Front-loading: the first half of the candidates must not take more
    # than ~90% of the total time (the paper reports ~50% at decile 7).
    halfway = fig14_rows[len(fig14_rows) // 2]["time_s"]
    total = fig14_rows[-1]["time_s"]
    if total > 0:
        assert halfway <= 0.95 * total + 1e-9


def test_time_to_first_candidate(benchmark, bench_scene):  # noqa: F811
    objects, query = bench_scene
    search = NNCSearch(objects)

    def first():
        return next(iter(search.stream(query, "PSD")))

    candidate = benchmark(first)
    assert candidate is not None


def test_full_stream_drain(benchmark, bench_scene):  # noqa: F811
    objects, query = bench_scene
    search = NNCSearch(objects)
    benchmark.pedantic(
        lambda: list(search.stream(query, "PSD")), rounds=3, iterations=1
    )
