"""Figure 16 (Appendix C) — effectiveness of the filtering techniques.

Regenerates the instance-comparison counts for the filter stacks {BF, L,
LP, LG, LGP, All} on the HOUSE-like dataset and benchmarks representative
stacks.  Expected shape (paper): every added filter reduces comparisons;
the full stack saves 1-2 orders of magnitude against brute force.
"""

import pytest

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.core.operators import make_operator
from repro.experiments.figures import FILTER_STACKS, fig16_filters

from .conftest import SCALE, bench_scene, print_and_save  # noqa: F401


@pytest.fixture(scope="module")
def fig16_rows():
    result = fig16_filters(SCALE, m_d_values=(20, 60, 100))
    print_and_save("fig16_filters", result.rows, result.figure)
    return result.rows


def test_all_filters_never_worse_than_bruteforce(fig16_rows):
    """The full stack must clearly beat brute force where it matters most.

    P-SD carries the max-flow cost, so its saving is large at every scale;
    for the cheap stochastic scans the level-filter bookkeeping can eat the
    saving at very small instance counts, hence the slack on SSD/SSSD.
    """
    for row in fig16_rows:
        if row["operator"] == "PSD":
            assert row["All"] <= row["BF"], row
        else:
            assert row["All"] <= row["BF"] * 1.3, row


def test_pruning_reduces_comparisons(fig16_rows):
    """Adding the pruning rules (P) on top of L must not add comparisons."""
    for row in fig16_rows:
        assert row["LP"] <= row["L"] * 1.05 + 5, row


@pytest.mark.parametrize("stack", ["BF", "LP", "All"])
def test_search_under_stack(benchmark, bench_scene, stack):  # noqa: F811
    objects, query = bench_scene
    search = NNCSearch(objects)
    operator = make_operator("SSD", **FILTER_STACKS[stack])

    def run():
        ctx = QueryContext(query, use_hull=stack in ("LG", "LGP", "All"))
        search.run(query, operator, ctx=ctx)
        return ctx.counters.instance_comparisons

    comparisons = benchmark(run)
    assert comparisons >= 0
