"""Kernel benchmark — batch kernels vs the scalar reference path.

Measures two things and writes both to ``BENCH_kernels.json``:

* **micro** — ops/sec of each batch kernel in :mod:`repro.core.kernels`
  against its scalar twin on paper-shaped inputs (one object's worth of
  instances, one node's worth of boxes);
* **end-to-end** — full NNC search wall time on the Figure 12 default A-N
  workload for each operator, run once with ``QueryContext(kernels=True)``
  and once with ``kernels=False``, asserting the candidate sets are
  identical and reporting the speedup;
* **obs** — observability overhead: the default context vs an explicit
  ``NullTracer`` (asserted within a 3% budget — tracing off must be free)
  and vs a fully enabled ``Tracer`` + ``MetricsRegistry`` (informational);
* **resilience** — resilience overhead: the default context vs one armed
  with a generous :class:`repro.resilience.Budget` (asserted within the
  same 3% budget — caps that never trip must be near-free).

``benchmarks/compare_bench.py`` diffs two result files and flags end-to-end
regressions (used by CI against the committed smoke baseline).

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full (tiny scale)
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_kernels.py --scale small --out BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core import kernels as K
from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.experiments import provenance, trajectory
from repro.experiments.figures import build_dataset
from repro.experiments.params import SCALES, ExperimentParams
from repro.experiments.report import format_table, kernel_summary
from repro.geometry.halfspace import closer_to_query
from repro.geometry.mbr import MBR, mbr_dominates
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_leq

END_TO_END_KINDS = ("SSD", "SSSD", "PSD", "FSD")


def _time_ops(fn, *, repeats: int, min_time: float = 0.05) -> float:
    """Ops/sec of ``fn``: repeat until ``min_time`` seconds have elapsed."""
    fn()  # warm-up (and fail fast)
    done = 0
    t0 = time.perf_counter()
    while True:
        for _ in range(repeats):
            fn()
        done += repeats
        elapsed = time.perf_counter() - t0
        if elapsed >= min_time:
            return done / elapsed


def micro_benchmarks(*, repeats: int, rng: np.random.Generator) -> list[dict]:
    """Ops/sec of each kernel and its scalar twin on paper-shaped inputs."""
    m_u, m_q, d, n_boxes = 40, 30, 3, 16
    us = rng.uniform(0, 100, (m_u, d))
    qs = rng.uniform(0, 100, (m_q, d))
    los = rng.uniform(0, 90, (n_boxes, d))
    his = los + rng.uniform(1, 10, (n_boxes, d))
    boxes = [MBR(lo, hi) for lo, hi in zip(los, his)]
    q_mbr = MBR(qs.min(axis=0), qs.max(axis=0))
    v_mbr = boxes[0]
    x = DiscreteDistribution(np.sort(rng.uniform(0, 50, m_u * m_q)), None)
    y = DiscreteDistribution(np.sort(rng.uniform(1, 51, m_u * m_q)), None)
    du = K.distance_matrix(us, qs)
    dv = K.distance_matrix(us + 0.5, qs)
    u_stats = rng.uniform(0, 50, (64, 3))
    u_stats.sort(axis=1)  # (min, mean, max) rows
    v_stats = np.array([25.0, 30.0, 35.0])

    class _Scan:
        def count_comparisons(self, n: int) -> None:
            pass

    scan_counter = _Scan()  # forces the Python merge scan in stochastic_leq
    cases = [
        (
            "distance_matrix",
            lambda: K.distance_matrix(us, qs),
            lambda: K.distance_matrix_scalar(us, qs),
        ),
        (
            "cdf_dominates",
            lambda: K.cdf_dominates(x.values, x.probs, y.values, y.probs),
            lambda: stochastic_leq(x, y, counter=scan_counter),
        ),
        (
            "partition_bounds",
            lambda: K.partition_bounds(los, his, qs),
            lambda: [(b.mindist(q), b.maxdist(q)) for b in boxes for q in qs],
        ),
        (
            "mbr_dominance_mask",
            lambda: K.mbr_dominance_mask(los, his, v_mbr, q_mbr, strict=True),
            lambda: [mbr_dominates(b, v_mbr, q_mbr, strict=True) for b in boxes],
        ),
        (
            "halfspace_adjacency",
            lambda: K.halfspace_adjacency(du, dv),
            lambda: [[closer_to_query(u, v, qs) for v in us + 0.5] for u in us],
        ),
        (
            "statistic_prune",
            lambda: K.statistic_prune(u_stats, v_stats),
            lambda: [bool(np.all(row <= v_stats + 1e-9)) for row in u_stats],
        ),
    ]
    rows = []
    for name, kernel_fn, scalar_fn in cases:
        kernel_ops = _time_ops(kernel_fn, repeats=repeats)
        scalar_ops = _time_ops(scalar_fn, repeats=max(1, repeats // 10))
        rows.append(
            {
                "kernel": name,
                "kernel_ops_per_sec": kernel_ops,
                "scalar_ops_per_sec": scalar_ops,
                "speedup": kernel_ops / scalar_ops,
            }
        )
    return rows


def end_to_end(scale_name: str, *, rounds: int = 3) -> list[dict]:
    """Full NNC wall time per operator, kernels on vs off, identical outputs.

    Each mode is timed ``rounds`` times interleaved and the minimum total is
    reported, so the kernel/scalar ratio (what ``compare_bench.py`` gates on)
    is robust against scheduler jitter within a run.
    """
    params = ExperimentParams().scaled(SCALES[scale_name])
    rng = np.random.default_rng(params.seed)
    objects, queries = build_dataset("A-N", params, rng)
    search = NNCSearch(objects)
    rows = []
    for kind in END_TO_END_KINDS:
        # Warm object-level caches (local R-trees, packed node arrays) first:
        # they are shared dataset state, built once per dataset like the
        # paper's index, so neither mode pays their construction inside its
        # timed region.  Query contexts themselves stay cold below.
        for query in queries:
            search.run(query, kind, ctx=QueryContext(query, kernels=True))
        times = {True: float("inf"), False: float("inf")}
        oid_sets = {True: [], False: []}
        summaries = {}
        for round_no in range(rounds):
            for kernels in (True, False):
                total = 0.0
                oids = []
                for query in queries:
                    ctx = QueryContext(query, kernels=kernels)
                    t0 = time.perf_counter()
                    result = search.run(query, kind, ctx=ctx)
                    total += time.perf_counter() - t0
                    oids.append(frozenset(result.oids()))
                times[kernels] = min(times[kernels], total)
                oid_sets[kernels] = oids
                if round_no == 0:
                    summaries[kernels] = kernel_summary(ctx.counters)
        identical = oid_sets[True] == oid_sets[False]
        if not identical:
            raise AssertionError(
                f"{kind}: kernels=True and kernels=False candidate sets differ"
            )
        rows.append(
            {
                "operator": kind,
                "kernel_time": times[True],
                "scalar_time": times[False],
                "speedup": times[False] / times[True] if times[True] else 0.0,
                "identical_candidates": identical,
                "n_objects": len(objects),
                "n_queries": len(queries),
                "kernel_invocations": summaries[True]["kernel_invocations"],
                "elements_per_invocation": summaries[True][
                    "elements_per_invocation"
                ],
                "scalar_fallbacks": summaries[False]["scalar_fallbacks"],
            }
        )
    return rows


def obs_overhead(scale_name: str) -> dict:
    """Observability overhead on the end-to-end search (tracing off vs on).

    Tracing-off must be near-free: an untraced query pays one
    ``tracer.enabled`` attribute check per instrumentation site and nothing
    else.  The baseline (default context) and an explicit ``NullTracer``
    context are timed interleaved (min of 3 rounds each, robust against
    machine drift within the run) and asserted within a 3% + 2 ms budget of
    each other.  A fully enabled ``Tracer`` + ``MetricsRegistry`` run is
    reported informationally as ``overhead_enabled``.
    """
    from repro.obs import MetricsRegistry, NullTracer, Tracer

    params = ExperimentParams().scaled(SCALES[scale_name])
    rng = np.random.default_rng(params.seed)
    objects, queries = build_dataset("A-N", params, rng)
    search = NNCSearch(objects)
    kind = "PSD"
    for query in queries:  # warm shared dataset caches, as in end_to_end()
        search.run(query, kind, ctx=QueryContext(query))

    def run_all(make_ctx) -> float:
        t0 = time.perf_counter()
        for query in queries:
            search.run(query, kind, ctx=make_ctx(query))
        return time.perf_counter() - t0

    base = off = enabled = float("inf")
    for _ in range(3):
        base = min(base, run_all(QueryContext))
        off = min(off, run_all(lambda q: QueryContext(q, tracer=NullTracer())))
        enabled = min(
            enabled,
            run_all(
                lambda q: QueryContext(q, tracer=Tracer(), metrics=MetricsRegistry())
            ),
        )
    overhead_off = off / base - 1.0
    if off - base > 0.03 * base + 0.002:
        raise AssertionError(
            f"tracing-disabled overhead {overhead_off:.1%} exceeds the 3% budget "
            f"(baseline {base:.4f}s, null-tracer {off:.4f}s)"
        )
    return {
        "operator": kind,
        "n_queries": len(queries),
        "baseline_time": base,
        "null_tracer_time": off,
        "enabled_time": enabled,
        "overhead_disabled": overhead_off,
        "overhead_enabled": enabled / base - 1.0,
    }


def resilience_overhead(scale_name: str) -> dict:
    """Resilience overhead on the end-to-end search (disabled vs armed).

    Resilience-disabled must be near-free: an unbudgeted, unfaulted query
    pays one ``ctx.resilient`` attribute check per dominance check (the
    end-to-end section, gated by ``compare_bench.py`` against the committed
    baseline, catches any drift of that path).  Here the default context is
    timed against a context armed with a *generous* budget — caps far above
    what the workload spends, so nothing degrades and every checkpoint runs
    — and asserted within a 3% + 2 ms budget.
    """
    from repro.resilience import Budget

    params = ExperimentParams().scaled(SCALES[scale_name])
    rng = np.random.default_rng(params.seed)
    objects, queries = build_dataset("A-N", params, rng)
    search = NNCSearch(objects)
    kind = "PSD"
    for query in queries:  # warm shared dataset caches, as in end_to_end()
        search.run(query, kind, ctx=QueryContext(query))

    def run_all(make_ctx) -> float:
        t0 = time.perf_counter()
        for query in queries:
            search.run(query, kind, ctx=make_ctx(query))
        return time.perf_counter() - t0

    def generous_ctx(q):
        return QueryContext(
            q,
            budget=Budget(
                deadline_ms=600_000.0,
                max_dominance_checks=10**12,
                max_flow_augmentations=10**12,
            ),
        )

    disabled = armed = float("inf")
    for _ in range(3):
        disabled = min(disabled, run_all(QueryContext))
        armed = min(armed, run_all(generous_ctx))
    overhead_armed = armed / disabled - 1.0
    if armed - disabled > 0.03 * disabled + 0.002:
        raise AssertionError(
            f"budget-armed overhead {overhead_armed:.1%} exceeds the 3% budget "
            f"(disabled {disabled:.4f}s, armed {armed:.4f}s)"
        )
    return {
        "operator": kind,
        "n_queries": len(queries),
        "disabled_time": disabled,
        "armed_time": armed,
        "overhead_armed": overhead_armed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: fewer micro repeats, end-to-end at tiny scale",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="end-to-end workload scale (default: tiny; --smoke forces tiny)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json"),
        help="output JSON path (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--trajectory",
        default=str(trajectory.DEFAULT_PATH),
        help="perf-trajectory JSONL to append a summary record to "
        "(default: benchmarks/results/trajectory.jsonl)",
    )
    parser.add_argument(
        "--no-trajectory",
        action="store_true",
        help="skip the trajectory append (ad-hoc runs)",
    )
    args = parser.parse_args(argv)
    scale = "tiny" if args.smoke else (args.scale or "tiny")
    repeats = 10 if args.smoke else 50
    rng = np.random.default_rng(20150531)
    micro = micro_benchmarks(repeats=repeats, rng=rng)
    e2e = end_to_end(scale)
    obs = obs_overhead(scale)
    resilience = resilience_overhead(scale)
    payload = provenance.stamp({
        "scale": scale,
        "smoke": args.smoke,
        "micro": micro,
        "end_to_end": e2e,
        "obs": obs,
        "resilience": resilience,
    })
    print(format_table(micro, "Micro kernels (ops/sec)"))
    print()
    print(format_table(e2e, f"End-to-end NNC, Fig 12 default A-N ({scale})"))
    print()
    print(format_table([obs], "Observability overhead (off asserted <3%)"))
    print()
    print(
        format_table(
            [resilience], "Resilience overhead (generous budget asserted <3%)"
        )
    )
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out}")
    if not args.no_trajectory:
        action = trajectory.append(args.trajectory, trajectory.record_for(payload))
        print(f"trajectory: {action} record in {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
