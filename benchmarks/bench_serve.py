"""Serving benchmark — shard scaling, latency percentiles, cache hits.

Writes ``BENCH_serve.json`` with six sections:

* **meta** — machine facts that gate interpretation: ``cpu_count`` above
  all.  Shard scaling is a *parallelism* win; on a single-core box the
  parallel backends collapse to time-sliced serial work and the expected
  4-shard speedup is ~1x (the scatter-gather overhead is the interesting
  number there).  CI runners and production boxes have the cores; the
  JSON records what this box could actually show.
* **shard_scaling** — per shard count K: queries/sec, latency p50/p99,
  speedup vs K=1 on the same backend, and an ``equal`` flag asserting the
  scatter-gather answer matched the single-process `nnc` answer on every
  query (the correctness pin riding along with the perf numbers).
* **cache** — cold vs warm throughput on a repeated workload through
  :class:`repro.serve.cache.ResultCache` and the final hit ratio.
* **open_loop** — latency *under load*: Poisson arrivals at a fixed
  offered QPS, each request's latency measured from its **scheduled**
  arrival time (not from when a client thread got around to sending it),
  so queueing delay is charged to the answer — the coordinated-omission-
  free p99 a closed serial loop cannot see.
* **router** — the multi-node tier (:mod:`repro.serve.router`) under the
  same open-loop harness: a 1-node vs 3-node (R=2) QPS sweep with every
  answer pinned against the monolith, plus hedged vs unhedged p99 with
  one deterministically slow replica and the hedge-win ratio
  (``compare_bench.py`` gates on the ratio and on zero mismatches).
* **restart** — cold :class:`DatasetManager` build vs a durable warm
  restart from a snapshot (:mod:`repro.serve.durable`): cold_s / warm_s /
  speedup / snapshot_bytes — the recovery-time number the durable tier is
  bought for.
* **observability** — full :class:`repro.serve.server.ServeApp` dispatch
  with SLO metrics on, comparing sampling off vs 1% vs the full plane
  (1% sampling + 100 Hz continuous profiler + ~2 Hz fleet scrapes):
  relative overhead of each (hard budget: <3% apiece, exit 1 on breach),
  p50/p95/p99 latency read back from the served histograms, and the
  degraded-answer rate (expected 0.0 on an unbudgeted workload —
  ``compare_bench.py`` gates on it).

``compare_bench.py`` auto-detects this payload and gates on the 4-shard /
1-shard throughput *ratio* (machine-independent), not absolute QPS.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py              # default scale
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke      # CI-sized
    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.nnc import NNCSearch
from repro.datasets import synthetic
from repro.experiments import provenance, trajectory
from repro.serve.cache import ResultCache
from repro.serve.shard import ShardedSearch

OPERATOR = "FSD"
SHARD_COUNTS = (1, 2, 4)


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.array(values), q)) if values else 0.0


def build_workload(n: int, m: int, d: int, n_queries: int, seed: int):
    rng = np.random.default_rng(seed)
    centers = synthetic.anticorrelated_centers(n, d, rng)
    scale = (n / 100_000) ** (-1.0 / d)
    objects = synthetic.make_objects(centers, m, 400.0 * scale, rng)
    queries = [
        synthetic.make_query(
            centers[rng.integers(n)], max(2, m // 2), 200.0 * scale, rng,
            oid=f"Q{i}",
        )
        for i in range(n_queries)
    ]
    return objects, queries


def bench_shard_scaling(
    objects, queries, k: int, backend: str, workers: int | None = None
) -> list[dict]:
    # Reference answers from the monolith pin correctness per query.
    mono = NNCSearch(objects)
    expected = [sorted(mono.run(q, OPERATOR, k=k).oids()) for q in queries]

    rows: list[dict] = []
    base_qps = None
    for shards in SHARD_COUNTS:
        search = ShardedSearch(
            objects, shards=shards, backend=backend, workers=workers
        )
        # Warm-up: fork the pool / build per-query caches outside the clock.
        search.run(queries[0], OPERATOR, k=k)
        latencies: list[float] = []
        equal = True
        t0 = time.perf_counter()
        for q, expect in zip(queries, expected):
            q_start = time.perf_counter()
            result = search.run(q, OPERATOR, k=k)
            latencies.append((time.perf_counter() - q_start) * 1000.0)
            if sorted(result.oids()) != expect:
                equal = False
        total = time.perf_counter() - t0
        search.close()
        qps = len(queries) / total if total else 0.0
        if shards == 1:
            base_qps = qps
        rows.append({
            "shards": shards,
            "backend": search.backend if backend == "auto" else backend,
            "qps": qps,
            "p50_ms": _percentile(latencies, 50),
            "p99_ms": _percentile(latencies, 99),
            "speedup_vs_1": (qps / base_qps) if base_qps else 0.0,
            "equal": equal,
        })
    return rows


def bench_cache(objects, queries, k: int, repeats: int = 3) -> dict:
    """Cold vs warm pass over a repeated workload through the LRU cache."""
    search = ShardedSearch(objects, shards=2, backend="serial")
    cache = ResultCache(capacity=4 * len(queries))

    def one_pass() -> float:
        t0 = time.perf_counter()
        for q in queries:
            key = ResultCache.key(0, OPERATOR, "euclidean", k, q)
            if cache.get(key) is None:
                result = search.run(q, OPERATOR, k=k)
                cache.put(key, {"oids": result.oids()})
        return time.perf_counter() - t0

    cold = one_pass()
    warm_times = [one_pass() for _ in range(repeats)]
    search.close()
    warm = min(warm_times)
    stats = cache.stats()
    return {
        "queries": len(queries),
        "qps_cold": len(queries) / cold if cold else 0.0,
        "qps_warm": len(queries) / warm if warm else 0.0,
        "warm_speedup": (cold / warm) if warm else 0.0,
        "hit_ratio": stats["hit_ratio"],
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def bench_observability(
    objects, queries, k: int, repeats: int = 5, sample_rate: float = 0.01
) -> dict:
    """Serve-layer cost of SLO metrics + trace sampling, plus quantiles.

    Dispatches the full workload through :class:`ServeApp` three times —
    sampling off, sampling at ``sample_rate``, and sampling plus the full
    observability plane (continuous profiler at ``profile_hz`` and a ~2 Hz
    fleet scraper pulling ``/status`` + ``/metrics.json``) — interleaved,
    min-of-``repeats`` per configuration so scheduler noise cancels.
    Latency quantiles come from the *histogram* (``Histogram.quantile``),
    i.e. exactly what ``/metrics`` and ``/status`` report, not from a side
    list of timings.
    """
    from repro.obs import MetricsRegistry
    from repro.obs.fleet import FleetScraper
    from repro.serve.remote import LocalNode
    from repro.serve.server import ServeApp
    from repro.serve.updates import DatasetManager

    profile_hz = 100.0

    payloads = [
        {
            "points": [list(map(float, p)) for p in q.points],
            "probs": [float(p) for p in q.probs],
            "operator": OPERATOR,
            "k": k,
            "cache": False,
        }
        for q in queries
    ]

    def make_app(rate: float, hz: float = 0.0) -> ServeApp:
        registry = MetricsRegistry()
        manager = DatasetManager(
            objects, shards=2, backend="serial", metrics=registry,
            profile_hz=hz,
        )
        return ServeApp(
            manager, registry=registry, sample_rate=rate, profile_hz=hz
        )

    def one_pass(app: ServeApp) -> float:
        t0 = time.perf_counter()
        for payload in payloads:
            status, _ = app.dispatch("POST", "/query", payload)
            assert status == 200
        return time.perf_counter() - t0

    def one_pass_scraped(
        app: ServeApp, scraper: FleetScraper, period_s: float = 0.5
    ) -> float:
        # Same dispatch loop, but with the federation tier pulling the
        # node's /status + /metrics.json at ~2 Hz in the foreground — the
        # scrape cost lands inside the measured window, as it would on a
        # router sharing the box.
        last_scrape = time.perf_counter()
        t0 = time.perf_counter()
        for payload in payloads:
            status, _ = app.dispatch("POST", "/query", payload)
            assert status == 200
            now = time.perf_counter()
            if now - last_scrape >= period_s:
                scraper.scrape()
                last_scrape = now
        scraper.scrape()
        return time.perf_counter() - t0

    plain = make_app(0.0)
    sampled = make_app(sample_rate)
    profiled = make_app(sample_rate, hz=profile_hz)
    # The scraper absorbs into its own registry so federation does not
    # write back into the registry whose cost we are measuring.
    scraper = FleetScraper(
        {"bench": LocalNode("bench", profiled)}, MetricsRegistry()
    )
    try:
        # warm-up outside the clock
        one_pass(plain), one_pass(sampled), one_pass(profiled)
        plain_times, sampled_times, profiled_times = [], [], []
        for _ in range(repeats):
            plain_times.append(one_pass(plain))
            sampled_times.append(one_pass(sampled))
            profiled_times.append(one_pass_scraped(profiled, scraper))
        t_plain, t_sampled = min(plain_times), min(sampled_times)
        t_profiled = min(profiled_times)

        hist = None
        for labels, metric in sampled.registry.families().get(
            "repro_query_seconds", ()
        ):
            if dict(labels).get("operator") == OPERATOR:
                hist = metric
        quantiles = {
            q: (hist.quantile(frac) if hist is not None else 0.0)
            for q, frac in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99))
        }
        served = sampled.registry.value(
            "repro_serve_requests_total", {"route": "/query", "status": "200"}
        )
        degraded = sampled.registry.total("repro_serve_degraded_total")
        prof = profiled.profiler.snapshot(top=1)
        return {
            "queries": len(payloads),
            "repeats": repeats,
            "sample_rate": sample_rate,
            "plain_s": t_plain,
            "sampled_s": t_sampled,
            "overhead": (t_sampled / t_plain - 1.0) if t_plain else 0.0,
            "profile_hz": profile_hz,
            "profiled_s": t_profiled,
            "profiled_overhead": (
                (t_profiled / t_plain - 1.0) if t_plain else 0.0
            ),
            "profile_samples": prof["samples"],
            "profile_attributed": prof["attributed"],
            "fleet_scrapes": scraper.registry.value(
                "repro_fleet_scrapes_total", {"node": "bench"}
            ),
            "fleet_scrape_errors": scraper.registry.value(
                "repro_fleet_scrape_errors_total", {"node": "bench"}
            ),
            "latency_ms": {
                q: v * 1000.0 for q, v in quantiles.items()
            },
            "degraded_rate": (degraded / served) if served else 0.0,
            "traces": sampled.sampler.sampled,
        }
    finally:
        plain.manager.close()
        sampled.manager.close()
        profiled.close()


def poisson_open_loop(
    fire, queries, *, qps: float, duration: float, seed: int = 0
) -> dict:
    """Drive ``fire(query)`` at a fixed offered load (Poisson arrivals).

    A closed loop (send, wait, send) lets a slow answer *delay the next
    request*, hiding queueing — coordinated omission.  Here arrivals are
    scheduled up front from an exponential inter-arrival draw at ``qps``;
    each request's latency runs from its scheduled arrival to completion,
    so time spent queueing behind a slow predecessor counts against p99.
    Shared by the shard-scaling and router sections.
    """
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / qps, size=int(qps * duration * 2) + 8)
    arrivals = np.cumsum(gaps)
    arrivals = arrivals[arrivals < duration]
    latencies: list[float] = []
    errors = 0
    lock = threading.Lock()

    def task(q, scheduled_abs: float) -> None:
        nonlocal errors
        try:
            fire(q)
        except Exception:  # noqa: BLE001 — tally, don't kill the load loop
            with lock:
                errors += 1
            return
        done = time.perf_counter()
        with lock:
            latencies.append((done - scheduled_abs) * 1000.0)

    client = ThreadPoolExecutor(
        max_workers=min(16, 4 * (os.cpu_count() or 2)),
        thread_name_prefix="open-loop",
    )
    t0 = time.perf_counter()
    for i, arrival in enumerate(arrivals):
        now = time.perf_counter() - t0
        if arrival > now:
            time.sleep(arrival - now)
        client.submit(task, queries[i % len(queries)], t0 + arrival)
    client.shutdown(wait=True)
    total = time.perf_counter() - t0
    return {
        "offered_qps": qps,
        "duration_s": duration,
        "requests": int(len(arrivals)),
        "errors": errors,
        "achieved_qps": len(latencies) / total if total else 0.0,
        "p50_ms": _percentile(latencies, 50),
        "p99_ms": _percentile(latencies, 99),
        "max_ms": max(latencies) if latencies else 0.0,
    }


def bench_open_loop(
    objects,
    queries,
    k: int,
    backend: str,
    *,
    shards: int = 4,
    workers: int | None = None,
    qps: float = 20.0,
    duration: float = 2.0,
    seed: int = 0,
) -> dict:
    """Single-process scatter-gather latency under a fixed offered load."""
    search = ShardedSearch(
        objects, shards=shards, backend=backend, workers=workers
    )
    search.run(queries[0], OPERATOR, k=k)  # warm-up outside the clock
    stats = poisson_open_loop(
        lambda q: search.run(q, OPERATOR, k=k), queries,
        qps=qps, duration=duration, seed=seed,
    )
    stats["backend"] = search.backend
    stats["shards"] = shards
    search.close()
    return stats


def bench_router(
    objects,
    queries,
    k: int,
    *,
    shards: int = 4,
    qps: float = 20.0,
    duration: float = 2.0,
    slow_delay_ms: float = 25.0,
    hedge_ms: float = 5.0,
    seed: int = 0,
) -> dict:
    """Router tier under the open-loop harness: scaling + hedging.

    Two experiments, both with per-request answer pinning against the
    single-process monolith (a mismatch is a correctness failure that
    ``compare_bench.py`` gates on unconditionally):

    * **scaling** — one router over 1 node (R=1) vs 3 nodes (R=2), same
      offered Poisson load; the delta is the scatter-gather + HTTP-shaped
      dispatch overhead and whatever parallelism the box can show.
    * **hedging** — 3 nodes where one replica is deterministically slow
      (``slow_delay_ms`` injected).  The same load runs unhedged
      (``hedge_ms=0``) and hedged; the hedge-win ratio is wins / hedges
      launched.  On a multi-core box only slow-replica fetches cross the
      threshold and the ratio is a clean hedging-efficacy number; on one
      core queueing delay also trips it, so ``compare_bench.py`` skips
      the ratio gate there (loudly) just like the speedup gates.
    """
    from repro.serve.remote import LocalNode
    from repro.serve.router import RouterApp
    from repro.serve.server import ServeApp
    from repro.serve.updates import DatasetManager

    mono = NNCSearch(objects)
    expected = {}
    for q in queries:
        res = mono.run(q, OPERATOR, k=k)
        expected[q.oid] = sorted(zip(res.oids(), res.dominator_counts))
    payloads = {
        q.oid: {
            "points": [list(map(float, p)) for p in q.points],
            "probs": [float(p) for p in q.probs],
            "operator": OPERATOR,
            "k": k,
            "cache": False,
        }
        for q in queries
    }

    def make_fleet(node_ids, replication, hedge):
        nodes = {}
        for nid in node_ids:
            manager = DatasetManager(
                list(objects), shards=shards, partitioner="hash",
                backend="serial",
            )
            nodes[nid] = LocalNode(nid, ServeApp(manager, node_id=nid))
        router = RouterApp(
            nodes, shards=shards, replication=replication, hedge_ms=hedge,
        )
        return router, nodes

    def run_load(router, extra=None):
        mismatches = 0
        lock = threading.Lock()

        def fire(q):
            nonlocal mismatches
            status, body = router.dispatch(
                "POST", "/query", payloads[q.oid], {}
            )
            if status != 200:
                raise RuntimeError(f"router -> {status}")
            got = sorted(
                (c["oid"], c["dominators"]) for c in body["candidates"]
            )
            if got != expected[q.oid]:
                with lock:
                    mismatches += 1

        router.dispatch("POST", "/query", payloads[queries[0].oid], {})
        stats = poisson_open_loop(
            fire, queries, qps=qps, duration=duration, seed=seed
        )
        stats["answer_mismatches"] = mismatches
        if extra:
            stats.update(extra)
        return stats

    def close_fleet(router, nodes):
        router.close()
        for node in nodes.values():
            node.app.close()

    scaling = []
    for node_ids, replication in ((("n1",), 1), (("n1", "n2", "n3"), 2)):
        router, nodes = make_fleet(node_ids, replication, 0)
        try:
            scaling.append(run_load(router, {
                "nodes": len(node_ids), "replication": replication,
            }))
        finally:
            close_fleet(router, nodes)

    hedging = {"slow_delay_ms": slow_delay_ms, "hedge_ms": hedge_ms}
    for label, hedge in (("unhedged", 0.0), ("hedged", hedge_ms)):
        router, nodes = make_fleet(("n1", "n2", "n3"), 2, hedge)
        try:
            # Slow down one replica of shard 0 after the warm-up query
            # has forked the pools (the warm-up runs inside run_load).
            slow = router.placement.owners(0)[0]
            nodes[slow].delay_s = slow_delay_ms / 1000.0
            stats = run_load(router)
            hedging[f"p99_{label}_ms"] = stats["p99_ms"]
            hedging[f"mismatches_{label}"] = stats["answer_mismatches"]
            if label == "hedged":
                hedges = router.registry.total("repro_router_hedges_total")
                wins = router.registry.total("repro_router_hedge_wins_total")
                hedging["hedges"] = int(hedges)
                hedging["hedge_wins"] = int(wins)
                hedging["hedge_win_ratio"] = (
                    wins / hedges if hedges else None
                )
        finally:
            close_fleet(router, nodes)

    return {
        "shards": shards,
        "scaling": scaling,
        "hedging": hedging,
        "answer_mismatches": (
            sum(row["answer_mismatches"] for row in scaling)
            + hedging["mismatches_unhedged"] + hedging["mismatches_hedged"]
        ),
    }


def bench_restart(
    objects, *, mutations: int = 16, seed: int = 0, repeats: int = 3
) -> dict:
    """Cold rebuild vs durable warm restart (``repro.serve.durable``).

    Cold = full :class:`DatasetManager` construction from raw objects
    (validation, partitioning, per-shard STR bulk loads).  Warm = a
    :class:`DurableDatasetManager` recovering the same dataset from its
    snapshot via ``numpy.memmap`` — the skip of validation/partition/build
    is the speedup the durable tier buys on every restart.  Both sides
    take the best of ``repeats`` runs: restarts are milliseconds at bench
    scale, where a single stray scheduler tick swamps the signal.
    """
    import shutil
    import tempfile

    from repro.serve.durable import DurableDatasetManager
    from repro.serve.updates import DatasetManager

    cold_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        cold_mgr = DatasetManager(list(objects), shards=2, backend="serial")
        cold_s = min(cold_s, time.perf_counter() - t0)
        cold_mgr.close()

    data_dir = Path(tempfile.mkdtemp(prefix="bench-restart-"))
    rng = np.random.default_rng(seed)
    try:
        mgr = DurableDatasetManager(
            list(objects), data_dir=data_dir, shards=2, backend="serial",
            snapshot_every=0,
        )
        for _ in range(mutations):
            mgr.insert(rng.normal(size=(3, objects[0].dim)).tolist())
        mgr.close()  # final checkpoint covers the mutations

        warm_s = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm_mgr = DurableDatasetManager(
                [], data_dir=data_dir, shards=2, backend="serial",
            )
            warm_s = min(warm_s, time.perf_counter() - t0)
            recovered_epoch = warm_mgr.epoch
            warm_mgr.wal.close()
            # Plain close: a durable close would cut a fresh checkpoint
            # per repeat and shift what the next iteration recovers from.
            DatasetManager.close(warm_mgr)
        snapshot_bytes = sum(
            p.stat().st_size for p in data_dir.glob("snap-*.snap")
        )
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
    return {
        "objects": len(objects),
        "mutations": mutations,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": (cold_s / warm_s) if warm_s else 0.0,
        "recovered_epoch": recovered_epoch,
        "snapshot_bytes": snapshot_bytes,
    }


OVERHEAD_BUDGET = 0.03  # 1% sampling must cost <3% end to end


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workload")
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--m", type=int, default=None)
    parser.add_argument("--d", type=int, default=2)
    parser.add_argument("--k", type=int, default=1)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "serial", "thread", "process",
                                 "pool"])
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --backend pool")
    parser.add_argument("--open-loop-qps", type=float, default=None,
                        help="offered rate for the open-loop section "
                        "(default: 20, or 10 with --smoke)")
    parser.add_argument("--open-loop-seconds", type=float, default=None,
                        help="open-loop duration (default: 2, or 1 with "
                        "--smoke); 0 skips the section")
    parser.add_argument("--seed", type=int, default=20150531)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--trajectory", default=str(trajectory.DEFAULT_PATH),
                        help="perf-trajectory JSONL to append a summary "
                        "record to (default: "
                        "benchmarks/results/trajectory.jsonl)")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip the trajectory append (ad-hoc runs)")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (200 if args.smoke else 2000)
    m = args.m if args.m is not None else (4 if args.smoke else 10)
    n_queries = (
        args.queries if args.queries is not None else (8 if args.smoke else 40)
    )

    objects, queries = build_workload(n, m, args.d, n_queries, args.seed)
    cpu_count = os.cpu_count() or 1
    print(
        f"bench_serve: n={n} m={m} d={args.d} queries={n_queries} "
        f"k={args.k} cpus={cpu_count} backend={args.backend}"
    )

    scaling = bench_shard_scaling(
        objects, queries, args.k, args.backend, args.workers
    )
    for row in scaling:
        flag = "" if row["equal"] else "  !! MISMATCH"
        print(
            f"  K={row['shards']} ({row['backend']:>7}): "
            f"{row['qps']:8.2f} qps  p50 {row['p50_ms']:7.2f} ms  "
            f"p99 {row['p99_ms']:7.2f} ms  "
            f"x{row['speedup_vs_1']:.2f} vs K=1{flag}"
        )
    if not all(row["equal"] for row in scaling):
        print("FAIL: sharded answers diverged from the monolith")
        return 1

    cache = bench_cache(objects, queries, args.k)
    print(
        f"  cache: cold {cache['qps_cold']:8.2f} qps -> warm "
        f"{cache['qps_warm']:8.2f} qps (x{cache['warm_speedup']:.1f}, "
        f"hit ratio {cache['hit_ratio']:.2f})"
    )

    ol_qps = (
        args.open_loop_qps
        if args.open_loop_qps is not None
        else (10.0 if args.smoke else 20.0)
    )
    ol_secs = (
        args.open_loop_seconds
        if args.open_loop_seconds is not None
        else (1.0 if args.smoke else 2.0)
    )
    open_loop = None
    if ol_secs > 0 and ol_qps > 0:
        open_loop = bench_open_loop(
            objects, queries, args.k, args.backend,
            shards=min(4, max(SHARD_COUNTS)),
            workers=args.workers, qps=ol_qps, duration=ol_secs,
            seed=args.seed,
        )
        print(
            f"  open-loop ({open_loop['backend']}, K={open_loop['shards']}): "
            f"offered {open_loop['offered_qps']:.0f} qps -> achieved "
            f"{open_loop['achieved_qps']:.1f} qps  p50 "
            f"{open_loop['p50_ms']:.2f} ms  p99 {open_loop['p99_ms']:.2f} ms "
            f"({open_loop['requests']} reqs, {open_loop['errors']} errors)"
        )
        if open_loop["errors"]:
            print("FAIL: open-loop requests errored")
            return 1

    router = None
    if ol_secs > 0 and ol_qps > 0:
        router = bench_router(
            objects, queries, args.k, qps=ol_qps, duration=ol_secs,
            seed=args.seed,
        )
        for row in router["scaling"]:
            print(
                f"  router ({row['nodes']} node(s), R={row['replication']}): "
                f"offered {row['offered_qps']:.0f} qps -> achieved "
                f"{row['achieved_qps']:.1f} qps  p50 {row['p50_ms']:.2f} ms  "
                f"p99 {row['p99_ms']:.2f} ms ({row['requests']} reqs, "
                f"{row['errors']} errors, "
                f"{row['answer_mismatches']} mismatches)"
            )
        hedging = router["hedging"]
        ratio = hedging.get("hedge_win_ratio")
        print(
            f"  router hedging (slow replica +{hedging['slow_delay_ms']:.0f} "
            f"ms, hedge at {hedging['hedge_ms']:.0f} ms): p99 "
            f"{hedging['p99_unhedged_ms']:.2f} -> "
            f"{hedging['p99_hedged_ms']:.2f} ms  "
            f"{hedging.get('hedge_wins', 0)}/{hedging.get('hedges', 0)} "
            f"hedge wins"
            + (f" (ratio {ratio:.2f})" if ratio is not None else "")
        )
        if router["answer_mismatches"]:
            print("FAIL: router answers diverged from the monolith")
            return 1
        if any(row["errors"] for row in router["scaling"]):
            print("FAIL: router open-loop requests errored")
            return 1

    restart = bench_restart(objects, seed=args.seed)
    print(
        f"  restart: cold build {restart['cold_s']*1000:7.1f} ms -> warm "
        f"recovery {restart['warm_s']*1000:7.1f} ms "
        f"(x{restart['speedup']:.1f}, epoch {restart['recovered_epoch']}, "
        f"snapshot {restart['snapshot_bytes']/1024:.0f} KiB)"
    )

    obs = bench_observability(objects, queries, args.k)
    lat = obs["latency_ms"]
    print(
        f"  obs: plain {obs['plain_s']*1000:7.1f} ms -> sampled "
        f"{obs['sampled_s']*1000:7.1f} ms ({obs['overhead']:+.1%} at "
        f"{obs['sample_rate']:.0%} sampling)  p50 {lat['p50']:.2f} / "
        f"p95 {lat['p95']:.2f} / p99 {lat['p99']:.2f} ms  "
        f"degraded_rate {obs['degraded_rate']:.2f}"
    )
    print(
        f"  obs: profiled {obs['profiled_s']*1000:7.1f} ms "
        f"({obs['profiled_overhead']:+.1%} at {obs['profile_hz']:.0f} Hz "
        f"profiling + federation)  {obs['profile_samples']} samples "
        f"({obs['profile_attributed']} attributed), "
        f"{obs['fleet_scrapes']:.0f} scrapes "
        f"({obs['fleet_scrape_errors']:.0f} errors)"
    )
    if obs["overhead"] > OVERHEAD_BUDGET:
        print(
            f"FAIL: observability overhead {obs['overhead']:+.1%} exceeds "
            f"the {OVERHEAD_BUDGET:.0%} budget at "
            f"{obs['sample_rate']:.0%} sampling"
        )
        return 1
    if obs["profiled_overhead"] > OVERHEAD_BUDGET:
        print(
            f"FAIL: profiler+federation overhead "
            f"{obs['profiled_overhead']:+.1%} exceeds the "
            f"{OVERHEAD_BUDGET:.0%} budget at {obs['profile_hz']:.0f} Hz"
        )
        return 1
    if obs["fleet_scrape_errors"]:
        print("FAIL: fleet scrapes errored during the profiled pass")
        return 1

    payload = {
        "bench": "serve",
        "scale": "smoke" if args.smoke else "default",
        "meta": {
            "cpu_count": cpu_count,
            "n": n,
            "m": m,
            "d": args.d,
            "k": args.k,
            "queries": n_queries,
            "operator": OPERATOR,
            "backend": args.backend,
            "workers": args.workers,
            "note": (
                "shard speedup needs cores: on cpu_count=1 the parallel "
                "backends serialize and ~1x is the honest ceiling; the "
                "scatter-gather answer equality still holds"
                if cpu_count <= 1
                else "multi-core box; 4-shard speedup target is >=2x"
            ),
        },
        "shard_scaling": scaling,
        "cache": cache,
        "open_loop": open_loop,
        "router": router,
        "restart": restart,
        "observability": obs,
    }
    provenance.stamp(payload)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    if not args.no_trajectory:
        action = trajectory.append(args.trajectory, trajectory.record_for(payload))
        print(f"trajectory: {action} record in {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
