"""Figure 13(a-f) — response time vs each Table 2 parameter.

Regenerates the six efficiency sweeps (same runs as Figure 11, reporting the
time columns).  Expected shape (paper): FSD/F+SD win while parameters grow
extents/instances, but lose to SSD/SSSD on the object-count sweep (e) where
their candidate sets — and hence verification work — blow up; times drop
with dimensionality (f) alongside the candidate counts.
"""

import pytest

from repro.experiments.figures import fig13

from .conftest import SCALE, print_and_save

SWEEP_KEYS = ["m_d", "h_d", "m_q", "h_q", "n", "d"]


@pytest.fixture(scope="module", params=SWEEP_KEYS)
def sweep(request):
    result = fig13(request.param, SCALE)
    print_and_save(f"fig13_{request.param}", result.rows, result.figure)
    return request.param, result.rows


def test_times_positive(sweep):
    key, rows = sweep
    assert rows, key
    for row in rows:
        for op in ("SSD", "SSSD", "PSD", "FSD", "F+SD"):
            assert row[op] >= 0.0


def test_psd_slowest_on_average(sweep):
    """PSD carries the max-flow cost: slowest of the five on average."""
    _, rows = sweep
    avg = {
        op: sum(r[op] for r in rows) / len(rows)
        for op in ("SSD", "SSSD", "PSD", "FSD", "F+SD")
    }
    assert avg["PSD"] >= max(avg["SSD"], avg["FSD"]) * 0.5  # same order or slower


def test_sweep_regeneration_cost(benchmark):
    """Time a single sweep point end to end (index build + 5 operators)."""
    from repro.experiments.figures import run_sweep

    benchmark.pedantic(
        lambda: run_sweep("m_q", SCALE, values=[30]), rounds=1, iterations=1
    )
