"""Micro-benchmarks of the algorithmic substrates.

Unit costs underlying every figure: the single-scan stochastic order check
(Section 5.1.1), the Theorem 12 max-flow, the EMD min-cost flow, and the
possible-world rank DP.
"""

import numpy as np
import pytest

from repro.core.context import QueryContext
from repro.core.psd import build_psd_network
from repro.flow.maxflow import max_flow
from repro.functions.n2 import PossibleWorldScores
from repro.functions.n3 import earth_movers_distance
from repro.objects.uncertain import UncertainObject
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_leq


@pytest.fixture(scope="module")
def big_distributions():
    rng = np.random.default_rng(11)
    x = DiscreteDistribution(rng.uniform(0, 100, 3000), np.full(3000, 1 / 3000))
    y = DiscreteDistribution(rng.uniform(1, 101, 3000), np.full(3000, 1 / 3000))
    return x, y


@pytest.fixture(scope="module")
def object_pair():
    rng = np.random.default_rng(13)
    u = UncertainObject(rng.normal(0, 2, size=(40, 2)))
    v = UncertainObject(rng.normal(1.5, 2, size=(40, 2)))
    q = UncertainObject(rng.normal(5, 1, size=(20, 2)))
    return u, v, q


def test_stochastic_scan(benchmark, big_distributions):
    x, y = big_distributions
    benchmark(lambda: stochastic_leq(x, y))


def test_psd_network_and_maxflow(benchmark, object_pair):
    u, v, q = object_pair

    def run():
        ctx = QueryContext(q)
        net, s, t, _ = build_psd_network(u, v, ctx)
        return max_flow(net, s, t)

    flow = benchmark(run)
    assert 0.0 <= flow <= 1.0 + 1e-9


def test_emd(benchmark, object_pair):
    u, _, q = object_pair
    value = benchmark(lambda: earth_movers_distance(u, q))
    assert value > 0


def test_rank_distribution_dp(benchmark):
    rng = np.random.default_rng(17)
    objects = [
        UncertainObject(rng.normal(c, 1.0, size=(6, 2)))
        for c in rng.uniform(0, 10, size=(25, 2))
    ]
    query = UncertainObject(rng.normal(5, 1.0, size=(5, 2)))

    def run():
        pw = PossibleWorldScores(objects, query)
        return pw.nn_probability(0)

    p = benchmark(run)
    assert 0.0 <= p <= 1.0
