"""Figure 12 — average query response time per dataset and operator.

Regenerates the per-dataset timing table.  Expected shape (paper): FSD/F+SD
are fastest on easy datasets thanks to the cheap dominance check; PSD is the
slowest of the five; SSD/SSSD sit between and overtake FSD/F+SD on datasets
where the full-dominance candidate sets explode (USA at scale, NBA/GW).
"""

import pytest

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.core.operators import make_operator
from repro.experiments.figures import fig12_response_time

from .conftest import SCALE, bench_scene, print_and_save  # noqa: F401


@pytest.fixture(scope="module")
def fig12_rows():
    result = fig12_response_time(SCALE)
    print_and_save("fig12_response_time", result.rows, result.figure)
    return result.rows


def test_fig12_rows_present(fig12_rows):
    assert len(fig12_rows) == 7
    for row in fig12_rows:
        for op in ("SSD", "SSSD", "PSD", "FSD", "F+SD"):
            assert row[op] >= 0.0


@pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD"])
def test_dominance_check_cost(benchmark, bench_scene, kind):  # noqa: F811
    """Single dominance check latency (the unit cost behind Figure 12)."""
    objects, query = bench_scene
    op = make_operator(kind)
    ctx = QueryContext(query)
    u, v = objects[0], objects[1]

    benchmark(lambda: op.dominates(u, v, ctx))


def test_full_search_psd(benchmark, bench_scene):  # noqa: F811
    objects, query = bench_scene
    search = NNCSearch(objects)
    benchmark.pedantic(
        lambda: search.run(query, "PSD"), rounds=3, iterations=1
    )
