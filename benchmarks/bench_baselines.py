"""Baselines beyond the paper's figures: NN-core and sphere dominance.

Remark 1 of the paper excludes NN-core from the evaluation because it can
miss NN objects; this bench quantifies how the candidate sets compare anyway
and times both baselines against the dominance operators.
"""

import numpy as np
import pytest

from repro.baselines.nncore import nn_core
from repro.baselines.spheres import sphere_nn_candidates
from repro.core.nnc import NNCSearch
from repro.datasets.synthetic import anticorrelated_centers, make_objects, make_query

from .conftest import write_result


@pytest.fixture(scope="module")
def baseline_scene():
    rng = np.random.default_rng(3)
    centers = anticorrelated_centers(120, 2, rng)
    objects = make_objects(centers, m_d=6, h_d=2500.0, rng=rng)
    query = make_query(centers[11], 5, 1300.0, rng)
    return objects, query


def test_candidate_size_comparison(baseline_scene):
    objects, query = baseline_scene
    search = NNCSearch(objects)
    sizes = {
        kind: len(search.run(query, kind)) for kind in ["SSD", "SSSD", "PSD", "F+SD"]
    }
    sizes["NN-core"] = len(nn_core(objects, query))
    sizes["spheres"] = len(sphere_nn_candidates(objects, query))
    write_result(
        "baseline_candidates",
        "Candidate sizes on A-N(120): "
        + ", ".join(f"{k}={v}" for k, v in sizes.items()),
    )
    # NN-core is the aggressive extreme; the sphere baseline the loosest.
    assert sizes["NN-core"] <= sizes["PSD"] + 1
    assert sizes["spheres"] >= sizes["F+SD"]


def test_nn_core_runtime(benchmark, baseline_scene):
    objects, query = baseline_scene
    core = benchmark.pedantic(
        lambda: nn_core(objects[:40], query), rounds=2, iterations=1
    )
    assert core


def test_sphere_candidates_runtime(benchmark, baseline_scene):
    objects, query = baseline_scene
    result = benchmark.pedantic(
        lambda: sphere_nn_candidates(objects, query), rounds=2, iterations=1
    )
    assert result


def test_topk_candidates_runtime(benchmark, baseline_scene):
    """k-skyband extension: cost of k = 5 vs k = 1 on the same scene."""
    objects, query = baseline_scene
    search = NNCSearch(objects)
    result = benchmark.pedantic(
        lambda: search.run(query, "SSD", k=5), rounds=3, iterations=1
    )
    assert len(result) >= len(search.run(query, "SSD"))
