"""Figure 10 — NN candidate size per dataset and operator.

Regenerates the per-dataset candidate-size table and benchmarks one NNC
query per operator on the A-N scene.  Expected shape (paper):
``SSD <= SSSD <= PSD << FSD <= F+SD`` on every dataset, with NBA/GW much
larger than the rest due to instance-cloud overlap.
"""

import pytest

from repro.core.nnc import NNCSearch
from repro.experiments.figures import fig10_candidate_size

from .conftest import SCALE, bench_scene, print_and_save  # noqa: F401


@pytest.fixture(scope="module")
def fig10_rows():
    result = fig10_candidate_size(SCALE)
    print_and_save("fig10_candidate_size", result.rows, result.figure)
    return result.rows


def test_fig10_shape(fig10_rows):
    """Candidate sets must nest per Figure 5 on every dataset."""
    for row in fig10_rows:
        assert row["SSD"] <= row["SSSD"] + 1e-9
        assert row["SSSD"] <= row["PSD"] + 1e-9
        assert row["PSD"] <= row["FSD"] + 1e-9
        assert row["FSD"] <= row["F+SD"] + 1e-9


@pytest.mark.parametrize("kind", ["SSD", "SSSD", "PSD", "FSD", "F+SD"])
def test_nnc_query(benchmark, bench_scene, kind):  # noqa: F811
    objects, query = bench_scene
    search = NNCSearch(objects)

    def run():
        return len(search.run(query, kind))

    size = benchmark(run)
    assert size >= 1
