"""Shared helpers for the benchmark suite.

Every ``bench_fig*`` module regenerates the data series of one figure of the
paper and times its key operation with pytest-benchmark.  Regenerated tables
are written to ``benchmarks/results/`` so a benchmark run leaves a complete
record (the tables quoted in EXPERIMENTS.md come from these files).

The scale preset is taken from the ``REPRO_SCALE`` environment variable
(``tiny`` by default so ``pytest benchmarks/ --benchmark-only`` stays fast;
set ``REPRO_SCALE=small`` or ``medium`` for the fuller tables).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.synthetic import anticorrelated_centers, make_objects, make_query
from repro.experiments.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_SCALE", "tiny")


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def print_and_save(name: str, rows: list[dict], title: str) -> None:
    """Format, print, and persist one regenerated figure table."""
    table = format_table(rows, title)
    print(f"\n{table}")
    write_result(name, table)


@pytest.fixture(scope="session")
def bench_scene():
    """A paper-shaped A-N scene sized for timing loops."""
    rng = np.random.default_rng(42)
    centers = anticorrelated_centers(250, 3, rng)
    objects = make_objects(centers, m_d=10, h_d=2500.0, rng=rng)
    query = make_query(centers[17], 8, 1300.0, rng)
    return objects, query
