"""Ablation — R-tree construction strategy and fan-out (substrate choices).

The paper packs instances into local R-trees with fan-out 4 and object MBRs
into a page-sized global tree.  This bench compares STR bulk loading against
one-by-one insertion and measures how fan-out affects the best-first NN
query that drives Algorithm 1's traversal.
"""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.index.rtree import RTree


@pytest.fixture(scope="module")
def entry_cloud():
    rng = np.random.default_rng(7)
    pts = rng.uniform(0, 1000, size=(2000, 2))
    return pts, [(MBR(p, p), i) for i, p in enumerate(pts)]


def test_bulk_load(benchmark, entry_cloud):
    _, entries = entry_cloud
    tree = benchmark(lambda: RTree.bulk_load(entries, max_entries=16))
    assert len(tree) == 2000


def test_insert_build(benchmark, entry_cloud):
    _, entries = entry_cloud

    def build():
        tree = RTree(max_entries=16)
        for mbr, payload in entries:
            tree.insert(mbr, payload)
        return tree

    tree = benchmark.pedantic(build, rounds=2, iterations=1)
    assert len(tree) == 2000


@pytest.mark.parametrize("fanout", [4, 8, 16, 32])
def test_nn_query_by_fanout(benchmark, entry_cloud, fanout):
    pts, entries = entry_cloud
    tree = RTree.bulk_load(entries, max_entries=fanout)
    rng = np.random.default_rng(1)
    queries = rng.uniform(0, 1000, size=(50, 2))

    def run():
        return sum(tree.nearest_distance(q) for q in queries)

    total = benchmark(run)
    brute = sum(
        float(np.linalg.norm(pts - q, axis=1).min()) for q in queries
    )
    assert total == pytest.approx(brute, rel=1e-9)


def test_range_query(benchmark, entry_cloud):
    _, entries = entry_cloud
    tree = RTree.bulk_load(entries, max_entries=16)
    box = MBR(np.array([200.0, 200.0]), np.array([400.0, 400.0]))
    hits = benchmark(lambda: len(tree.range_search(box)))
    assert hits > 0
