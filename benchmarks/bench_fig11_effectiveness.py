"""Figure 11(a-f) — candidate size vs each Table 2 parameter.

Regenerates all six effectiveness sweeps.  Expected shapes (paper):

* (a)-(d): SSD/SSSD/PSD stay nearly flat as m_d, h_d, m_q, h_q grow, while
  FSD and especially F+SD inflate with the object/query extent;
* (e): FSD/F+SD deteriorate with n, the new operators stay stable;
* (f): candidate counts drop sharply as dimensionality rises (less overlap).
"""

import pytest

from repro.experiments.figures import (
    fig11a,
    fig11b,
    fig11c,
    fig11d,
    fig11e,
    fig11f,
)

from .conftest import SCALE, print_and_save

SWEEPS = {
    "fig11a_m_d": fig11a,
    "fig11b_h_d": fig11b,
    "fig11c_m_q": fig11c,
    "fig11d_h_q": fig11d,
    "fig11e_n": fig11e,
    "fig11f_d": fig11f,
}


@pytest.fixture(scope="module", params=sorted(SWEEPS))
def sweep_rows(request):
    result = SWEEPS[request.param](SCALE)
    print_and_save(request.param, result.rows, result.figure)
    return request.param, result.rows


def test_sweep_nesting_shape(sweep_rows):
    """The Figure 5 nesting must hold at every sweep point."""
    _, rows = sweep_rows
    for row in rows:
        assert row["SSD"] <= row["SSSD"] + 1e-9
        assert row["SSSD"] <= row["PSD"] + 1e-9
        assert row["PSD"] <= row["FSD"] + 1e-9


def test_fig11b_fsd_sensitive_to_extent(benchmark):
    """h_d growth hurts the boundary-based operators most (paper's claim);
    benchmarked on the smallest/largest h_d pair."""
    from repro.experiments.figures import run_sweep

    def run():
        return run_sweep("h_d", SCALE, kinds=("SSD", "F+SD"), values=[100.0, 500.0])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lo, hi = rows[0], rows[-1]
    # F+SD must grow at least as fast as SSD when extents quintuple.
    growth_fplus = hi["size[F+SD]"] - lo["size[F+SD]"]
    growth_ssd = hi["size[SSD]"] - lo["size[SSD]"]
    assert growth_fplus >= growth_ssd - 1e-9
