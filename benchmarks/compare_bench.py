"""Diff two benchmark result files and flag regressions.

Understands two payload shapes, auto-detected from the JSON:

* **kernels** (``bench_kernels.py``, has ``end_to_end``) — compares the
  end-to-end section per operator.  Two comparison metrics::

      --metric ratio   kernel_time / scalar_time per operator (default).
                       Machine-independent: both times come from the same
                       run on the same box, so the ratio survives CI-runner
                       vs laptop comparisons.  It answers "did the kernels
                       lose their edge over the scalar reference?"
      --metric time    absolute kernel_time.  Only meaningful when baseline
                       and current ran on comparable hardware.

* **serve** (``bench_serve.py``, has ``shard_scaling``) — gates on the
  machine-independent numbers: per-K ``speedup_vs_1`` (both runs normalise
  against their own K=1, so core counts cancel out of the comparison) and
  the cache ``hit_ratio``; a false ``equal`` flag (sharded answer diverged
  from the monolith) in the *current* file is always a hard failure, as is
  a non-zero ``observability.degraded_rate`` (the bench workload carries
  no budgets, so a degraded answer is a serve-path correctness problem).
  When the payload has a ``router`` section, two more gates apply: a
  non-zero ``router.answer_mismatches`` (router answers diverged from the
  single-process oracle) is a hard failure, and the hedge-win ratio is
  gated like the other gauges — with the same loud one-core skip, since
  queueing on one core trips the hedge threshold for scheduling reasons.
  ``--metric`` is ignored for serve payloads.

All metrics are scale-sensitive, so a baseline/current ``scale`` mismatch
downgrades the run to informational (warn, exit 0) unless ``--strict`` makes
it a hard error.  A kernels/serve kind mismatch is a usage error.

Exit codes: 0 ok / informational, 1 regression, 2 usage or strict-mode
scale mismatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke --out /tmp/now.json
    PYTHONPATH=src python benchmarks/compare_bench.py \
        benchmarks/results/BENCH_smoke_baseline.json /tmp/now.json
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --out /tmp/serve.json
    PYTHONPATH=src python benchmarks/compare_bench.py \
        benchmarks/results/BENCH_serve_smoke_baseline.json /tmp/serve.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.15


def load_bench(path: str | Path) -> dict:
    """Load one benchmark payload (kernels or serve), validating the shape."""
    data = json.loads(Path(path).read_text())
    if isinstance(data.get("end_to_end"), list):
        return data
    if isinstance(data.get("shard_scaling"), list):
        return data
    raise ValueError(
        f"{path}: neither a bench_kernels result (no end_to_end) nor a "
        "bench_serve result (no shard_scaling)"
    )


def bench_kind(data: dict) -> str:
    """``"serve"`` for bench_serve payloads, ``"kernels"`` otherwise."""
    return "serve" if "shard_scaling" in data else "kernels"


def _metric_value(row: dict, metric: str) -> float | None:
    if metric == "time":
        return float(row["kernel_time"])
    scalar = float(row.get("scalar_time", 0.0))
    return float(row["kernel_time"]) / scalar if scalar else None


def compare(
    baseline: dict,
    current: dict,
    *,
    metric: str = "ratio",
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[dict], list[str]]:
    """Per-operator comparison rows plus the list of regression messages.

    A regression is a current metric value more than ``threshold`` (relative)
    above the baseline's.  Operators present in only one file are reported
    but never flagged.
    """
    base_rows = {row["operator"]: row for row in baseline["end_to_end"]}
    cur_rows = {row["operator"]: row for row in current["end_to_end"]}
    rows: list[dict] = []
    regressions: list[str] = []
    for op in list(base_rows) + [op for op in cur_rows if op not in base_rows]:
        base_val = (
            _metric_value(base_rows[op], metric) if op in base_rows else None
        )
        cur_val = _metric_value(cur_rows[op], metric) if op in cur_rows else None
        row = {"operator": op, "baseline": base_val, "current": cur_val}
        if base_val is not None and cur_val is not None and base_val > 0:
            change = cur_val / base_val - 1.0
            row["change"] = f"{change:+.1%}"
            if change > threshold:
                regressions.append(
                    f"{op}: {metric} {base_val:.4g} -> {cur_val:.4g} "
                    f"({change:+.1%} > {threshold:.0%} threshold)"
                )
        else:
            row["change"] = "-"
        rows.append(row)
    return rows, regressions


def compare_serve(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[dict], list[str]]:
    """Serve-payload comparison rows plus regression messages.

    Gated metrics are machine-independent: per-K ``speedup_vs_1`` (each run
    is normalised against its own K=1) and the cache ``hit_ratio``.  Both
    are higher-is-better, so a regression is a *drop* beyond ``threshold``.
    A false ``equal`` flag in the current file — the sharded answer diverged
    from the single-process one — is flagged unconditionally.

    On a single-core runner (current ``meta.cpu_count == 1``) the speedup
    gate is skipped — with one core every parallel backend time-slices
    serial work plus scatter overhead, so ``speedup_vs_1`` measures the
    machine, not the code.  The skip is loud (a ``SKIPPED`` row per gate),
    and the correctness gates (``equal``, ``degraded_rate``) still apply.
    """
    rows: list[dict] = []
    regressions: list[str] = []
    one_core = (current.get("meta") or {}).get("cpu_count") == 1

    def _gauge(name: str, base_val, cur_val) -> None:
        row = {"metric": name, "baseline": base_val, "current": cur_val}
        if base_val is not None and cur_val is not None and base_val > 0:
            change = cur_val / base_val - 1.0
            row["change"] = f"{change:+.1%}"
            if change < -threshold:
                regressions.append(
                    f"{name}: {base_val:.4g} -> {cur_val:.4g} "
                    f"({change:+.1%} < -{threshold:.0%} threshold)"
                )
        else:
            row["change"] = "-"
        rows.append(row)

    base_rows = {row["shards"]: row for row in baseline["shard_scaling"]}
    cur_rows = {row["shards"]: row for row in current["shard_scaling"]}
    for shards in sorted(set(base_rows) | set(cur_rows)):
        cur = cur_rows.get(shards)
        if cur is not None and not cur.get("equal", True):
            regressions.append(
                f"K={shards}: sharded answer diverged from the monolith "
                "(equal=false) — correctness, not perf"
            )
        if shards == 1:
            continue  # speedup_vs_1 is 1.0 by construction
        base = base_rows.get(shards)
        if one_core:
            print(
                f"SKIPPED speedup gate [K={shards}]: current run recorded "
                "cpu_count=1 — parallel speedup is unmeasurable on one "
                "core; correctness gates still apply"
            )
            rows.append({
                "metric": f"speedup_vs_1[K={shards}]",
                "baseline": base.get("speedup_vs_1") if base else None,
                "current": cur.get("speedup_vs_1") if cur else None,
                "change": "SKIPPED (cpu_count=1)",
            })
            continue
        _gauge(
            f"speedup_vs_1[K={shards}]",
            base.get("speedup_vs_1") if base else None,
            cur.get("speedup_vs_1") if cur else None,
        )
    _gauge(
        "cache.hit_ratio",
        baseline.get("cache", {}).get("hit_ratio"),
        current.get("cache", {}).get("hit_ratio"),
    )
    cur_router = current.get("router")
    if cur_router is not None:
        base_router = baseline.get("router") or {}
        mismatches = cur_router.get("answer_mismatches")
        rows.append(
            {
                "metric": "router.answer_mismatches",
                "baseline": base_router.get("answer_mismatches"),
                "current": mismatches,
                "change": "-",
            }
        )
        if mismatches:
            # The router must be bit-identical to the monolith — a single
            # divergent answer is a correctness failure, not a perf one.
            regressions.append(
                f"router.answer_mismatches: {mismatches} != 0 — router "
                "answers diverged from the single-process oracle"
            )
        cur_ratio = (cur_router.get("hedging") or {}).get("hedge_win_ratio")
        base_ratio = (base_router.get("hedging") or {}).get(
            "hedge_win_ratio"
        )
        if one_core:
            # With one core every request queues past the hedge threshold,
            # so hedges fire for scheduling reasons, not slow replicas —
            # the ratio measures the machine.  Same loud skip as the
            # speedup gates; the mismatch gate above still applies.
            print(
                "SKIPPED hedge-win gate: current run recorded cpu_count=1 "
                "— queueing delay trips the hedge threshold on one core; "
                "the answer-mismatch gate still applies"
            )
            rows.append({
                "metric": "router.hedge_win_ratio",
                "baseline": base_ratio,
                "current": cur_ratio,
                "change": "SKIPPED (cpu_count=1)",
            })
        else:
            _gauge("router.hedge_win_ratio", base_ratio, cur_ratio)

    cur_obs = current.get("observability")
    if cur_obs is not None:
        degraded = cur_obs.get("degraded_rate")
        rows.append(
            {
                "metric": "observability.degraded_rate",
                "baseline": (baseline.get("observability") or {}).get(
                    "degraded_rate"
                ),
                "current": degraded,
                "change": "-",
            }
        )
        if degraded:
            # The bench workload is unbudgeted: any degraded answer means
            # the serve path degraded spontaneously — correctness, not perf.
            regressions.append(
                f"observability.degraded_rate: {degraded:.4g} != 0 on an "
                "unbudgeted workload"
            )
    return rows, regressions


def gate_verdicts(
    rows: list[dict], regressions: list[str], name_key: str
) -> list[dict]:
    """Structured per-gate verdicts from comparison rows + regressions.

    Each row becomes ``{"gate", "status", "measured", "baseline",
    "detail"}`` with status ``pass``/``fail``/``skip``: *fail* when a
    regression message names the gate, *skip* when the gate was explicitly
    skipped (one-core speedup) or one side is missing, *pass* otherwise.
    Regressions with no backing row (e.g. a sharded-answer divergence) get
    their own ``fail`` entries, so the verdict file never under-reports.
    """
    gates: list[dict] = []
    matched: set[int] = set()
    for row in rows:
        name = str(row[name_key])
        change = str(row.get("change", ""))
        hit = next(
            (
                i for i, msg in enumerate(regressions)
                if msg.startswith(f"{name}:")
            ),
            None,
        )
        if hit is not None:
            matched.add(hit)
            status, detail = "fail", regressions[hit]
        elif change.startswith("SKIPPED"):
            status, detail = "skip", change
        elif row.get("baseline") is None or row.get("current") is None:
            status, detail = "skip", "missing on one side"
        else:
            status, detail = "pass", change
        gates.append(
            {
                "gate": name,
                "status": status,
                "measured": row.get("current"),
                "baseline": row.get("baseline"),
                "detail": detail,
            }
        )
    for i, msg in enumerate(regressions):
        if i not in matched:
            gates.append(
                {
                    "gate": msg.split(":", 1)[0],
                    "status": "fail",
                    "measured": None,
                    "baseline": None,
                    "detail": msg,
                }
            )
    return gates


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for exit codes."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression budget (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--metric",
        choices=["ratio", "time"],
        default="ratio",
        help="ratio = kernel_time/scalar_time (machine-independent, default); "
        "time = absolute kernel_time",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 2) on a baseline/current scale mismatch instead of "
        "downgrading to informational",
    )
    parser.add_argument(
        "--verdict-out",
        metavar="PATH",
        help="also write a machine-readable per-gate verdict JSON "
        "(consumed by `repro figures --verdict` for dashboard badges)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    kind = bench_kind(current)
    if bench_kind(baseline) != kind:
        print(
            f"error: kind mismatch: baseline is {bench_kind(baseline)}, "
            f"current is {kind}",
            file=sys.stderr,
        )
        return 2

    informational = False
    base_scale = baseline.get("scale")
    cur_scale = current.get("scale")
    if base_scale != cur_scale:
        msg = (
            f"scale mismatch: baseline={base_scale!r} current={cur_scale!r} — "
            "end-to-end numbers are not comparable across workload scales"
        )
        if args.strict:
            print(f"error: {msg}", file=sys.stderr)
            return 2
        print(f"warning: {msg}; comparison is informational only", file=sys.stderr)
        informational = True

    if kind == "serve":
        rows, regressions = compare_serve(
            baseline, current, threshold=args.threshold
        )
        title = f"Serve scaling vs baseline (threshold {args.threshold:.0%}"
    else:
        rows, regressions = compare(
            baseline, current, metric=args.metric, threshold=args.threshold
        )
        title = (
            f"End-to-end {args.metric} vs baseline "
            f"(threshold {args.threshold:.0%}"
        )
    from repro.experiments.report import format_table

    title += ", informational)" if informational else ")"
    print(format_table(rows, title))
    if args.verdict_out:
        verdict = {
            "kind": kind,
            "baseline": str(args.baseline),
            "current": str(args.current),
            "threshold": args.threshold,
            "informational": informational,
            "gates": gate_verdicts(
                rows, regressions, "metric" if kind == "serve" else "operator"
            ),
        }
        Path(args.verdict_out).write_text(
            json.dumps(verdict, indent=2, sort_keys=True) + "\n"
        )
        print(f"verdict written to {args.verdict_out}")
    if regressions:
        print()
        for msg in regressions:
            print(f"REGRESSION {msg}", file=sys.stderr)
        if not informational:
            return 1
        print("(ignored: scale mismatch)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
