"""Diff two ``bench_kernels.py`` result files and flag regressions.

Compares the end-to-end section of a *current* ``BENCH_*.json`` against a
*baseline* and exits non-zero when any operator regressed by more than the
threshold (default 15%).

Two comparison metrics::

    --metric ratio   kernel_time / scalar_time per operator (default).
                     Machine-independent: both times come from the same run
                     on the same box, so the ratio survives CI-runner vs
                     laptop comparisons.  It answers "did the kernels lose
                     their edge over the scalar reference?"
    --metric time    absolute kernel_time.  Only meaningful when baseline
                     and current ran on comparable hardware.

Both metrics are scale-sensitive, so a baseline/current ``scale`` mismatch
downgrades the run to informational (warn, exit 0) unless ``--strict`` makes
it a hard error.

Exit codes: 0 ok / informational, 1 regression, 2 usage or strict-mode
scale mismatch.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke --out /tmp/now.json
    PYTHONPATH=src python benchmarks/compare_bench.py \
        benchmarks/results/BENCH_smoke_baseline.json /tmp/now.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.15


def load_bench(path: str | Path) -> dict:
    """Load one ``bench_kernels.py`` payload, validating the shape."""
    data = json.loads(Path(path).read_text())
    if "end_to_end" not in data or not isinstance(data["end_to_end"], list):
        raise ValueError(f"{path}: not a bench_kernels result (no end_to_end)")
    return data


def _metric_value(row: dict, metric: str) -> float | None:
    if metric == "time":
        return float(row["kernel_time"])
    scalar = float(row.get("scalar_time", 0.0))
    return float(row["kernel_time"]) / scalar if scalar else None


def compare(
    baseline: dict,
    current: dict,
    *,
    metric: str = "ratio",
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[dict], list[str]]:
    """Per-operator comparison rows plus the list of regression messages.

    A regression is a current metric value more than ``threshold`` (relative)
    above the baseline's.  Operators present in only one file are reported
    but never flagged.
    """
    base_rows = {row["operator"]: row for row in baseline["end_to_end"]}
    cur_rows = {row["operator"]: row for row in current["end_to_end"]}
    rows: list[dict] = []
    regressions: list[str] = []
    for op in list(base_rows) + [op for op in cur_rows if op not in base_rows]:
        base_val = (
            _metric_value(base_rows[op], metric) if op in base_rows else None
        )
        cur_val = _metric_value(cur_rows[op], metric) if op in cur_rows else None
        row = {"operator": op, "baseline": base_val, "current": cur_val}
        if base_val is not None and cur_val is not None and base_val > 0:
            change = cur_val / base_val - 1.0
            row["change"] = f"{change:+.1%}"
            if change > threshold:
                regressions.append(
                    f"{op}: {metric} {base_val:.4g} -> {cur_val:.4g} "
                    f"({change:+.1%} > {threshold:.0%} threshold)"
                )
        else:
            row["change"] = "-"
        rows.append(row)
    return rows, regressions


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for exit codes."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression budget (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--metric",
        choices=["ratio", "time"],
        default="ratio",
        help="ratio = kernel_time/scalar_time (machine-independent, default); "
        "time = absolute kernel_time",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail (exit 2) on a baseline/current scale mismatch instead of "
        "downgrading to informational",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    informational = False
    base_scale = baseline.get("scale")
    cur_scale = current.get("scale")
    if base_scale != cur_scale:
        msg = (
            f"scale mismatch: baseline={base_scale!r} current={cur_scale!r} — "
            "end-to-end numbers are not comparable across workload scales"
        )
        if args.strict:
            print(f"error: {msg}", file=sys.stderr)
            return 2
        print(f"warning: {msg}; comparison is informational only", file=sys.stderr)
        informational = True

    rows, regressions = compare(
        baseline, current, metric=args.metric, threshold=args.threshold
    )
    from repro.experiments.report import format_table

    title = (
        f"End-to-end {args.metric} vs baseline "
        f"(threshold {args.threshold:.0%}"
        + (", informational)" if informational else ")")
    )
    print(format_table(rows, title))
    if regressions:
        print()
        for msg in regressions:
            print(f"REGRESSION {msg}", file=sys.stderr)
        if not informational:
            return 1
        print("(ignored: scale mismatch)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
