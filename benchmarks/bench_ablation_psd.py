"""Ablation — what each P-SD acceleration buys (beyond the paper's figures).

DESIGN.md calls out four design choices in the P-SD check: the SS-SD
cover-pruning gate, the convex-hull geometric filter, the level-by-level
coarse networks, and the max-flow reduction itself.  This bench times the
pairwise check under each configuration on the same scene.
"""

import itertools

import pytest

from repro.core.context import QueryContext
from repro.core.operators import make_operator

from .conftest import bench_scene, write_result  # noqa: F401

CONFIGS = {
    "bare-maxflow": dict(
        use_mbr_validation=False,
        use_cover_pruning=False,
        use_geometry=False,
        use_level=False,
    ),
    "+cover": dict(
        use_mbr_validation=False,
        use_cover_pruning=True,
        use_geometry=False,
        use_level=False,
    ),
    "+geometry": dict(
        use_mbr_validation=False,
        use_cover_pruning=True,
        use_geometry=True,
        use_level=False,
    ),
    "+level": dict(
        use_mbr_validation=False,
        use_cover_pruning=True,
        use_geometry=True,
        use_level=True,
    ),
    "full": dict(
        use_mbr_validation=True,
        use_cover_pruning=True,
        use_geometry=True,
        use_level=True,
    ),
}


@pytest.fixture(scope="module")
def pair_workload(bench_scene):  # noqa: F811
    objects, query = bench_scene
    pairs = list(itertools.islice(itertools.permutations(objects[:30], 2), 120))
    return pairs, query


@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_psd_check_config(benchmark, pair_workload, config):
    pairs, query = pair_workload
    op = make_operator("PSD", **CONFIGS[config])

    def run():
        ctx = QueryContext(query)
        return sum(1 for u, v in pairs if op.dominates(u, v, ctx))

    dominated = benchmark.pedantic(run, rounds=3, iterations=1)
    # Every configuration must agree on the outcome count.
    baseline_op = make_operator("PSD", **CONFIGS["bare-maxflow"])
    ctx = QueryContext(query)
    expected = sum(1 for u, v in pairs if baseline_op.dominates(u, v, ctx))
    assert dominated == expected


def test_record_config_agreement(pair_workload):
    """All stacks agree pair by pair (ablation is purely about speed)."""
    pairs, query = pair_workload
    outcomes = {}
    for name, flags in CONFIGS.items():
        op = make_operator("PSD", **flags)
        ctx = QueryContext(query)
        outcomes[name] = [op.dominates(u, v, ctx) for u, v in pairs]
    baseline = outcomes["bare-maxflow"]
    for name, result in outcomes.items():
        assert result == baseline, name
    write_result(
        "ablation_psd",
        f"P-SD ablation: {len(pairs)} pairwise checks, "
        f"{sum(baseline)} dominances; all {len(CONFIGS)} configs agree.",
    )
